type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- writing ------------------------------------------------------------ *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Shortest representation that round-trips the doubles we emit:
   integral values get a trailing ".0" (so they read back as floats),
   everything else tries %.12g and falls back to %.17g. Non-finite
   floats have no JSON spelling and degrade to null. *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if not (Float.is_finite f) then Buffer.add_string buf "null"
    else Buffer.add_string buf (float_repr f)
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List vs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_string buf ", ";
        write buf v)
      vs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ", ";
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\": ";
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_buffer buf v = write buf v

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

let rec write_pretty buf indent = function
  | (Null | Bool _ | Int _ | Float _ | Str _) as v -> write buf v
  | List [] -> Buffer.add_string buf "[]"
  | Obj [] -> Buffer.add_string buf "{}"
  | List vs ->
    let pad = String.make (indent + 2) ' ' in
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf pad;
        write_pretty buf (indent + 2) v)
      vs;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (String.make indent ' ');
    Buffer.add_char buf ']'
  | Obj fields ->
    let pad = String.make (indent + 2) ' ' in
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf pad;
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\": ";
        write_pretty buf (indent + 2) v)
      fields;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (String.make indent ' ');
    Buffer.add_char buf '}'

let to_string_pretty v =
  let buf = Buffer.create 1024 in
  write_pretty buf 0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* --- parsing ------------------------------------------------------------ *)

exception Parse_error of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else error (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let m = String.length word in
    if !pos + m <= n && String.sub s !pos m = word then begin
      pos := !pos + m;
      v
    end
    else error ("expected " ^ word)
  in
  let parse_hex4 () =
    if !pos + 4 > n then error "truncated \\u escape";
    let h = String.sub s !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ h) with
    | Some c -> c
    | None -> error "bad \\u escape"
  in
  (* encode a code point as UTF-8 (surrogate pairs are not recombined;
     our own writer never emits them for the strings this project uses) *)
  let add_codepoint buf c =
    if c < 0x80 then Buffer.add_char buf (Char.chr c)
    else if c < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (c lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xe0 lor (c lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((c lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3f)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then error "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        if !pos >= n then error "truncated escape";
        let c = s.[!pos] in
        advance ();
        (match c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' -> add_codepoint buf (parse_hex4 ())
        | _ -> error "unknown escape");
        go ()
      | c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    let is_int =
      (not (String.contains tok '.'))
      && (not (String.contains tok 'e'))
      && not (String.contains tok 'E')
    in
    if is_int then
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> error "bad number")
    else
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> error "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [] in
        let rec go () =
          items := parse_value () :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            go ()
          | Some ']' -> advance ()
          | _ -> error "expected , or ] in array"
        in
        go ();
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec go () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            go ()
          | Some '}' -> advance ()
          | _ -> error "expected , or } in object"
        in
        go ();
        Obj (List.rev !fields)
      end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then error "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
    Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

(* --- accessors ---------------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_string_opt = function Str s -> Some s | _ -> None
let to_int_opt = function Int i -> Some i | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_bool_opt = function Bool b -> Some b | _ -> None
let to_list_opt = function List vs -> Some vs | _ -> None

let round2 f = Float.round (f *. 100.0) /. 100.0
