(** Chrome trace-event export and validation.

    {!chrome_trace} renders recorded events in the Trace Event Format
    (the ["traceEvents"] array form) that [chrome://tracing] and
    Perfetto load directly: spans as duration events (["ph": "B"/"E"]),
    decisions as thread-scoped instant events (["ph": "i"]) with their
    structured arguments under ["args"].

    {!validate} checks an exported document against the subset of the
    schema this project relies on — used by the CI trace job and the
    test suite. *)

(** [chrome_trace ~process events] builds the JSON document. [process]
    names the process in the viewer (default ["wisefuse"]). *)
val chrome_trace : ?process:string -> Trace.event list -> Json.t

(** Structural checks: the document is an object whose ["traceEvents"]
    is a list of objects; every event has a string ["name"]/["ph"] and
    numeric ["ts"]; timestamps are non-decreasing in list order; B/E
    events balance like parentheses with matching names; metadata
    ([ph = "M"]) and instant events pass through. Returns the event
    count. *)
val validate : Json.t -> (int, string) result
