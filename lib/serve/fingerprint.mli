(** Content-addressed structural fingerprints of scheduling requests.

    Generalizes {!Poly.Polyhedron.structural_key} from one constraint
    system to a whole request: the SCoP (domains, accesses, expression
    structure, loop-nest shape, textual positions, parameter defaults),
    the fusion-model configuration and the legality parameter floor.
    Requests with equal keys schedule identically, so the serving cache
    can answer with the stored response verbatim.

    Names do not participate: statement, iterator, parameter and array
    names are replaced by first-occurrence indices, so alpha-renamed
    programs collide (deliberately — same philosophy as
    [structural_key]'s rename-invariance). Loop ids are normalized by
    first occurrence, preserving loop-sharing structure only.

    The dependence set is a deterministic function of
    [(program, param_floor)], so {!key} does not recompute it — hashing
    the program content already content-addresses the dependences, and
    a cache hit performs no B&B emptiness tests. {!deps_key} exists so
    the cold path can record the derived dependence-set fingerprint in
    the cache entry, and so tests can assert the derivation is stable.

    Digests are MD5 hex (via [Digest]) — content addressing, not
    cryptography. The serialization format is versioned ({!version});
    any change to the canonical form must bump it. *)

(** Version tag mixed into every {!key}; bump on format changes. *)
val version : string

(** Canonical serialization of a whole program (exposed for tests and
    for auditing collisions). *)
val program_body : Scop.Program.t -> string

(** MD5 hex of {!program_body}. *)
val program : Scop.Program.t -> string

(** Canonical, order-independent serialization of a dependence set. *)
val deps_body : Deps.Dep.t list -> string

(** MD5 hex of {!deps_body}. *)
val deps_key : Deps.Dep.t list -> string

(** Canonical serialization of a model configuration (name, pre-fusion
    order identifier, cut strategies, Algorithm 2 flag). *)
val model_body : Fusion.Model.t -> string

(** The request key: MD5 hex over version, model, requested scheduling
    engine, reductions flag, param floor and program content.
    [param_floor] defaults to 2, matching {!Deps.Dep.analyze}; [engine]
    defaults to [Pluto.Engine.Auto]; [reductions] (default [false])
    keys whether reduction-aware legality relaxation was requested. The
    requested choice is keyed (not the resolved kind), so [Auto] and
    [Fixed] requests never share an entry. *)
val key :
  ?param_floor:int -> ?engine:Pluto.Engine.choice -> ?reductions:bool ->
  model:Fusion.Model.t -> Scop.Program.t -> string
