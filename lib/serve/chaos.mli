(** Fault injection for the serving layer (tests and the soak harness).

    The server consults {!solve_fault} once per cold solve, under the
    solver lock, so each planned fault is consumed by exactly one solve
    even under domain concurrency. Production never arms the hook. *)

type fault =
  | Raise  (** poison a solver counter mid-solve, then raise {!Injected} *)
  | Exhaust
      (** starve the request's budget so every solver rung trips and
          the ladder settles on the identity rung *)
  | Slow of int  (** hold the solver lock for [ms] before solving *)

exception Injected of string

(** The per-cold-solve hook; default returns [None] (no fault). *)
val solve_fault : (unit -> fault option) ref

(** Consumption tallies, for soak-survival accounting. *)
val injected_raises : int ref

val injected_exhausts : int ref
val injected_slows : int ref

(** The recognizable value [Raise] adds to [Counters.lp_solves] before
    raising — recovery tests assert it never survives the firewall. *)
val poison_marker : int

(** The one-pivot budget the server substitutes for an [Exhaust]
    fault's request. *)
val starved_budget : unit -> Linalg.Budget.t

(** [apply fault run] executes [run] under the fault (used by the
    server; exposed for direct tests). For [Exhaust] the budget swap
    has already happened when [run] was built — this only tallies. *)
val apply : fault -> (unit -> 'a) -> 'a

(** Arm a fixed fault plan: each queued fault is consumed by exactly
    one cold solve, after which solves run clean. *)
val arm_queue : fault list -> unit

(** Disarm the hook and zero the tallies. *)
val reset : unit -> unit
