(** The line-delimited JSON protocol of the scheduling daemon: request
    parsing and response-envelope construction (one request per line,
    one response line per request). See the README "Serving" section
    for the wire schema. *)

type op =
  | Schedule of {
      kernel : string;
      size : int option;
      model : string;
      engine : string;  (** "ilp" | "lp-dfp" | "auto"; server-validated *)
    }
  | Ping
  | Stats
  | Shutdown

type request = { id : Obs.Json.t; op : op }

type parse_error = {
  err_id : Obs.Json.t;  (** echoed id when the line was valid JSON *)
  code : string;  (** "parse" | "usage" *)
  message : string;
}

(** Parse one request line. ["op"] defaults to ["schedule"], ["model"]
    to ["wisefuse"], ["engine"] to ["auto"]; unknown fields are
    ignored. *)
val parse_request : string -> (request, parse_error) result

val error_response : id:Obs.Json.t -> code:string -> message:string -> Obs.Json.t
val pong_response : id:Obs.Json.t -> Obs.Json.t
val shutdown_response : id:Obs.Json.t -> Obs.Json.t

val stats_response :
  id:Obs.Json.t -> uptime_s:float -> requests:int -> Cache.stats -> Obs.Json.t

(** The per-request ["serve"] section: wall time plus the solver work
    this request performed ([solver] is name/value pairs). *)
val serve_section : wall_us:float -> solver:(string * int) list -> Obs.Json.t

(** All solver counters at zero — a cache hit's ["serve"] section. *)
val zero_solver : (string * int) list

(** The counter names reported in the ["serve"] section, in order. *)
val solver_counter_names : string list

val schedule_response :
  id:Obs.Json.t ->
  key:string ->
  cache_state:string ->
  serve:Obs.Json.t ->
  result:Obs.Json.t ->
  Obs.Json.t

(** Compact single-line rendering (what goes on the wire). *)
val to_line : Obs.Json.t -> string
