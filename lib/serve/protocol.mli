(** The line-delimited JSON protocol of the scheduling daemon: request
    parsing and response-envelope construction (one request per line,
    one response line per request). See the README "Serving" section
    for the wire schema. *)

type op =
  | Schedule of {
      kernel : string;
      size : int option;
      model : string;
      engine : string;  (** "ilp" | "lp-dfp" | "auto"; server-validated *)
      reductions : bool;
          (** reduction-aware legality; part of the content address *)
      deadline_ms : int option;
          (** per-request solve deadline; the server applies its
              default when absent and its cap always *)
    }
  | Ping
  | Stats
  | Health
  | Metrics
  | Shutdown

type request = { id : Obs.Json.t; op : op }

type parse_error = {
  err_id : Obs.Json.t;  (** echoed id when the line was valid JSON *)
  code : string;  (** "parse" | "usage" *)
  message : string;
}

(** Parse one request line. ["op"] defaults to ["schedule"], ["model"]
    to ["wisefuse"], ["engine"] to ["auto"], ["reductions"] to ["off"]
    (only ["on"]/["off"] are accepted); a present ["deadline_ms"] must
    be a positive integer; unknown fields are ignored. *)
val parse_request : string -> (request, parse_error) result

val error_response : id:Obs.Json.t -> code:string -> message:string -> Obs.Json.t
val pong_response : id:Obs.Json.t -> Obs.Json.t
val shutdown_response : id:Obs.Json.t -> Obs.Json.t

val stats_response :
  id:Obs.Json.t -> uptime_s:float -> requests:int -> Cache.stats -> Obs.Json.t

(** Liveness/readiness snapshot: [ready] means a schedule request
    arriving now would be admitted (not draining, backlog under the
    high-water mark). [snapshot] is the compact telemetry summary
    ((name, total) pairs) embedded as ["snapshot"]. *)
val health_response :
  id:Obs.Json.t ->
  ready:bool ->
  draining:bool ->
  backlog:int ->
  max_pending:int ->
  breaker_open:int ->
  uptime_s:float ->
  snapshot:(string * int) list ->
  Cache.stats ->
  Obs.Json.t

(** The ["metrics"] response: the Prometheus text exposition carried
    inside the JSON envelope (the protocol stays line-delimited). *)
val metrics_response : id:Obs.Json.t -> text:string -> Obs.Json.t

(** The per-request ["serve"] section: wall time plus the solver work
    this request performed ([solver] is name/value pairs). When
    [deadline_ms] is given, also reports it and ["overrun_ms"] (wall
    time past the deadline, [0.] when the request made it).
    [coalesced] marks a hit served after waiting out another
    requester's solve of the same key; it is emitted only when true,
    so ordinary hit envelopes keep their historical bytes. *)
val serve_section :
  ?coalesced:bool ->
  ?deadline_ms:int -> wall_us:float -> solver:(string * int) list -> unit -> Obs.Json.t

(** All solver counters at zero — a cache hit's ["serve"] section. *)
val zero_solver : (string * int) list

(** The counter names reported in the ["serve"] section, in order. *)
val solver_counter_names : string list

val schedule_response :
  id:Obs.Json.t ->
  key:string ->
  cache_state:string ->
  serve:Obs.Json.t ->
  result:Obs.Json.t ->
  Obs.Json.t

(** Compact single-line rendering (what goes on the wire). *)
val to_line : Obs.Json.t -> string
