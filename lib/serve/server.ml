(* wiseserve: the long-lived scheduling daemon.

   Requests stream in as line-delimited JSON (stdio or a Unix socket),
   are keyed by Fingerprint and answered from the content-addressed
   Cache when possible. A miss runs the full certified pipeline —
   Fusion.Model.optimize under a nested trace capture (so the decision
   events become the response's explain chain), then wisecheck — and
   stores the rendered payload for every later request with the same
   content.

   Concurrency model (OCaml 5 domains): any number of workers serve
   hits and protocol ops concurrently — the cache has its own lock and
   the hit path touches no other shared state. Cold solves serialize
   under one solver lock, because the exact-arithmetic pipeline keeps
   process-wide state (the Farkas memo table, the pipeline counters,
   the trace sink); holding the lock also makes the per-request counter
   deltas exact — the response's "serve" section proves a hit performed
   zero LP pivots and zero B&B nodes, and a miss reports precisely its
   own solver work. Concurrent requests for the SAME key coalesce: the
   second requester blocks on the solver lock, re-probes the cache, and
   leaves with the first one's entry (a hit, never a duplicate solve).

   Hardening (wiseharden): every request solves under a fresh deadline
   budget (client "deadline_ms", server default/cap), so a pathological
   SCoP degrades down the resilience ladder instead of holding the
   solver lock indefinitely; degraded results are served ("uncached")
   but never stored, keeping the cache byte-pure. Any exception that
   escapes the solve path is firewalled at the request boundary: the
   global solver state is scrubbed back to the known-clean baseline
   (counter reset + Farkas memo reset — the same baseline every cold
   solve starts from) before the solver lock is released, and the
   client gets a typed "internal" error. Repeated failures for one
   fingerprint trip a TTL'd circuit breaker (Breaker). Admission
   control sheds schedule requests with a typed "overloaded" error once
   the pending-work gauge passes config.max_pending; protocol ops
   (ping/stats/health/shutdown) are always served. Input lines longer
   than config.max_line_bytes are answered with a typed "oversized"
   error without buffering them. SIGTERM/SIGINT drain the socket
   server: in-flight requests finish, new work is rejected, the socket
   is unlinked, and the process exits 0. *)

type config = {
  domains : int;
  cache_capacity : int;
  max_pending : int;  (* admission high-water mark (in-flight + queued) *)
  max_line_bytes : int;  (* longer request lines answer "oversized" *)
  default_deadline_ms : int option;  (* applied when the client sends none *)
  max_deadline_ms : int;  (* cap on client-requested deadlines *)
  breaker_threshold : int;  (* consecutive failures that open the breaker *)
  breaker_ttl_s : float;  (* how long an open breaker rejects *)
  metrics : bool;  (* mint live telemetry instruments (scrape via "metrics") *)
  trace_sample : int;
      (* capture a span trace for every Nth request (0 = never); the
         envelope gains "trace_id" and a compact "trace" summary *)
  access_log : string option;  (* JSONL access log path (None = off) *)
}

let default_config =
  {
    domains = 1;
    cache_capacity = 512;
    max_pending = 64;
    max_line_bytes = 1 lsl 20;
    default_deadline_ms = Some 10_000;
    max_deadline_ms = 300_000;
    breaker_threshold = 3;
    breaker_ttl_s = 30.0;
    metrics = true;
    trace_sample = 0;
    access_log = None;
  }

type t = {
  config : config;
  cache : Cache.t;
  breaker : Breaker.t;
  solver : Mutex.t;  (* serializes cold solves and the global solver state *)
  out : Mutex.t;  (* serializes response emission in pool modes *)
  stop : bool Atomic.t;
  requests : int Atomic.t;
  inflight : int Atomic.t;  (* requests admitted and not yet answered *)
  queued : int Atomic.t;  (* lines/connections waiting in a pool queue *)
  shed : int Atomic.t;  (* schedule requests refused by admission control *)
  recovered : int Atomic.t;  (* exceptions caught by the solve firewall *)
  started : float;  (* Clock.now — uptime survives NTP steps *)
  seq : int Atomic.t;  (* answered-line sequence, drives trace sampling *)
  telemetry : Telemetry.t;
  access : Access.t option;
  mutable on_stop : unit -> unit;
      (* wakes a blocked accept loop after a shutdown request *)
}

let create ?(config = default_config) () =
  let cache = Cache.create ~capacity:config.cache_capacity in
  let breaker =
    Breaker.create ~threshold:config.breaker_threshold
      ~ttl_s:config.breaker_ttl_s
  in
  let inflight = Atomic.make 0 in
  let queued = Atomic.make 0 in
  let shed = Atomic.make 0 in
  let recovered = Atomic.make 0 in
  let started = Linalg.Clock.now () in
  let telemetry =
    Telemetry.create ~enabled:config.metrics
      {
        Telemetry.cache_stats = (fun () -> Cache.stats cache);
        breaker_open = (fun () -> Breaker.open_count breaker);
        breaker_trips = (fun () -> Breaker.trips breaker);
        breaker_rejects = (fun () -> Breaker.rejects breaker);
        inflight = (fun () -> Atomic.get inflight);
        queued = (fun () -> Atomic.get queued);
        shed_total = (fun () -> Atomic.get shed);
        recovered_total = (fun () -> Atomic.get recovered);
        uptime_s = (fun () -> Linalg.Clock.now () -. started);
      }
  in
  (* per-stage pipeline latency flows in from Counters.time; the hook
     is process-wide, so the most recently created server owns it
     (observe_stage is a no-op when its telemetry is disabled) *)
  if config.metrics then
    Linalg.Counters.set_stage_observer (fun stage seconds ->
        Telemetry.observe_stage telemetry ~stage ~seconds);
  {
    config;
    cache;
    breaker;
    solver = Mutex.create ();
    out = Mutex.create ();
    stop = Atomic.make false;
    requests = Atomic.make 0;
    inflight;
    queued;
    shed;
    recovered;
    started;
    seq = Atomic.make 0;
    telemetry;
    access = Option.map (fun path -> Access.open_ ~path) config.access_log;
    on_stop = (fun () -> ());
  }

let cache t = t.cache
let breaker t = t.breaker
let telemetry t = t.telemetry
let stopping t = Atomic.get t.stop
let backlog t = Atomic.get t.inflight + Atomic.get t.queued

(* Flush and close the access log (idempotent; no-op without one).
   The serving loops call this on every exit path; tests driving
   [handle_line] directly call it before reading the file. *)
let close t = Option.iter Access.close t.access

(* --- building the cached result payload --------------------------------- *)

let row_json = function
  | Pluto.Sched.Hyp h ->
    Obs.Json.Obj
      [ ("hyp", Obs.Json.List (List.map (fun c -> Obs.Json.Int c) (Array.to_list h))) ]
  | Pluto.Sched.Beta b -> Obs.Json.Obj [ ("beta", Obs.Json.Int b) ]

let sched_json (prog : Scop.Program.t) (sched : Pluto.Sched.t) =
  Obs.Json.List
    (Array.to_list
       (Array.mapi
          (fun i rows ->
            Obs.Json.Obj
              [ ("stmt", Obs.Json.Str prog.Scop.Program.stmts.(i).Scop.Statement.name);
                ("rows", Obs.Json.List (List.map row_json rows)) ])
          sched))

(* outermost fusion partition, statement id order; derived from the icc
   nests when the structural model served the request *)
let partition_json (opt : Fusion.Model.optimized) =
  let part =
    match (opt.Fusion.Model.scheduler, opt.Fusion.Model.icc) with
    | Some res, _ -> res.Pluto.Scheduler.outer_partition
    | None, Some r ->
      let n = Array.length r.Icc.Icc_model.prog.Scop.Program.stmts in
      let part = Array.make n 0 in
      List.iteri
        (fun idx (nst : Icc.Icc_model.nest) ->
          List.iter (fun id -> part.(id) <- idx) nst.Icc.Icc_model.stmts)
        r.Icc.Icc_model.nests;
      part
    | None, None -> [||]
  in
  Obs.Json.List (List.map (fun p -> Obs.Json.Int p) (Array.to_list part))

let artifacts (opt : Fusion.Model.optimized) =
  match (opt.Fusion.Model.scheduler, opt.Fusion.Model.icc) with
  | Some res, _ ->
    ( res.Pluto.Scheduler.prog,
      res.Pluto.Scheduler.all_deps,
      res.Pluto.Scheduler.sched )
  | None, Some r ->
    (r.Icc.Icc_model.prog, r.Icc.Icc_model.deps, r.Icc.Icc_model.sched)
  | None, None -> assert false

let wisecheck_json prog (r : Analysis.Wisecheck.report) =
  Obs.Json.Obj
    [ ("errors", Obs.Json.Int r.Analysis.Wisecheck.errors);
      ("warnings", Obs.Json.Int r.Analysis.Wisecheck.warnings);
      ("infos", Obs.Json.Int r.Analysis.Wisecheck.infos);
      ("certified", Obs.Json.Bool (Analysis.Wisecheck.certified r));
      ( "findings",
        Obs.Json.List
          (List.map (Analysis.Finding.json prog) r.Analysis.Wisecheck.findings) ) ]

let explain_lines ex =
  let text = Format.asprintf "%a" Fusion.Explain.pp ex in
  String.split_on_char '\n' text
  |> List.filter (fun l -> String.trim l <> "")
  |> List.map (fun l -> Obs.Json.Str l)

(* One cold solve. Must be called with [t.solver] held: it resets the
   process-wide counters and the Farkas memo so the payload (explain
   chain and counters included) is a pure function of the request
   content — which is what makes cached responses byte-identical to
   fresh solves. The chaos hook is consulted here, under the lock, so a
   planned fault is consumed by exactly one solve. Returns the payload,
   the dependence-set fingerprint, and whether the resilience ladder
   degraded (degraded payloads must not be cached: a deadline or an
   injected fault is request-local state, and caching its result would
   poison every later request for the same content). *)
let solve ?budget ~kernel ~model ~size ~engine ~reductions prog =
  Linalg.Counters.reset ();
  Pluto.Farkas.reset_cache ();
  let fault = !Chaos.solve_fault () in
  let budget =
    (* An Exhaust fault starves the budget instead of sabotaging the LP
       layer itself: solver rungs trip, but the unbudgeted identity
       verification stays sound, so the ladder settles typed. *)
    match fault with
    | Some Chaos.Exhaust -> Some (Chaos.starved_budget ())
    | _ -> budget
  in
  let run () =
    Obs.Trace.capture (fun () ->
        Fusion.Model.optimize ?budget ~engine ~reductions model prog)
  in
  let opt, events =
    match fault with
    | None -> run ()
    | Some fault -> Chaos.apply fault run
  in
  let aprog, deps, sched = artifacts opt in
  let report = Analysis.Wisecheck.certify aprog deps sched opt.Fusion.Model.ast in
  let ex = { Fusion.Explain.kernel; model; outcome = opt; events } in
  let rung, degraded =
    match opt.Fusion.Model.resilience with
    | Some o -> (Fusion.Resilient.rung_name o.Fusion.Resilient.rung,
                 Fusion.Resilient.degraded o)
    | None -> ("structural", false)
  in
  (* requested choice plus the per-level solver that actually ran
     ("none" when the structural icc model served the request) *)
  let engine_used =
    match opt.Fusion.Model.scheduler with
    | Some res -> Pluto.Engine.kind_name res.Pluto.Scheduler.engine
    | None -> "none"
  in
  let payload =
    Obs.Json.Obj
      [ ("kernel", Obs.Json.Str kernel);
        ("model", Obs.Json.Str (Fusion.Model.name model));
        ("size", Obs.Json.Int size);
        ("engine", Obs.Json.Str (Pluto.Engine.choice_name engine));
        ("engine_used", Obs.Json.Str engine_used);
        ("reductions", Obs.Json.Str (if reductions then "on" else "off"));
        ("rung", Obs.Json.Str rung);
        ("degraded", Obs.Json.Bool degraded);
        ("schedule", sched_json aprog sched);
        ("partition", partition_json opt);
        ("wisecheck", wisecheck_json aprog report);
        ("explain", Obs.Json.List (explain_lines ex));
        ( "counters",
          Obs.Json.Obj
            (List.map
               (fun (n, v) -> (n, Obs.Json.Int v))
               (Linalg.Counters.all_counters ())) ) ]
  in
  (payload, Fingerprint.deps_key deps, degraded)

(* --- request handling ---------------------------------------------------- *)

let solver_deltas () =
  let all = Linalg.Counters.all_counters () in
  List.map
    (fun n -> (n, Option.value (List.assoc_opt n all) ~default:0))
    Protocol.solver_counter_names

(* The deadline a request actually solves under: the client's ask,
   capped — or the server default when the client sent none. *)
let effective_deadline t requested =
  match requested with
  | Some d -> Some (min d t.config.max_deadline_ms)
  | None -> t.config.default_deadline_ms

let hit_response ~id ~key ~coalesced ~wall0 ?deadline_ms (e : Cache.entry) =
  if Obs.Trace.on () then
    Obs.Trace.instant ~cat:"serve" "serve.cache-hit"
      ~args:
        [ ("key", Obs.Json.Str key); ("coalesced", Obs.Json.Bool coalesced) ];
  let wall_us = Linalg.Clock.elapsed_us ~since:wall0 in
  Protocol.schedule_response ~id ~key ~cache_state:"hit"
    ~serve:
      (Protocol.serve_section ~coalesced ?deadline_ms ~wall_us
         ~solver:Protocol.zero_solver ())
    ~result:e.Cache.payload

(* A solve failure (typed diagnostic or firewalled exception) feeds the
   per-fingerprint breaker; crossing the threshold opens it. *)
let note_failure t key =
  if Breaker.record_failure t.breaker key && Obs.Trace.on () then
    Obs.Trace.instant ~cat:"serve" "serve.breaker"
      ~args:[ ("key", Obs.Json.Str key); ("state", Obs.Json.Str "open") ]

(* Poisoned-state recovery: an exception escaped the solve path, so the
   process-wide solver state is suspect (half-bumped counters, a
   partially filled Farkas memo). Scrub everything back to the baseline
   every cold solve starts from, while the solver lock is still held —
   the next solve provably sees clean state. The trace sink needs no
   repair here: [Obs.Trace.capture] restores it on exceptions. *)
let recover t ~key exn =
  Linalg.Counters.reset ();
  Pluto.Farkas.reset_cache ();
  Atomic.incr t.recovered;
  if Obs.Trace.on () then
    Obs.Trace.instant ~cat:"serve" "serve.recovered"
      ~args:
        [ ("key", Obs.Json.Str key);
          ("exn", Obs.Json.Str (Printexc.to_string exn)) ];
  note_failure t key

let handle_schedule t ~id ~kernel ~size ~model:model_name ~engine:engine_name
    ~reductions ~deadline_ms:requested_deadline =
  let wall0 = Linalg.Clock.now () in
  match Kernels.Registry.find kernel with
  | exception Not_found ->
    Protocol.error_response ~id ~code:"usage"
      ~message:
        (Printf.sprintf "unknown kernel %S (see `wisefuse list')" kernel)
  | entry -> (
    match Fusion.Model.of_name model_name with
    | exception Not_found ->
      Protocol.error_response ~id ~code:"usage"
        ~message:(Printf.sprintf "unknown model %S" model_name)
    | model -> (
      match Pluto.Engine.of_string engine_name with
      | None ->
        Protocol.error_response ~id ~code:"usage"
          ~message:
            (Printf.sprintf
               "unknown engine %S (expected \"ilp\", \"lp-dfp\" or \"auto\")"
               engine_name)
      | Some engine -> (
      let n = Option.value size ~default:entry.Kernels.Registry.model_size in
      match entry.Kernels.Registry.program ~n () with
      | exception Invalid_argument msg ->
        Protocol.error_response ~id ~code:"usage"
          ~message:(Printf.sprintf "cannot build %s at size %d: %s" kernel n msg)
      | prog ->
        let key = Fingerprint.key ~engine ~reductions ~model prog in
        let deadline_ms = effective_deadline t requested_deadline in
        let args =
          if Obs.Trace.on () then
            [ ("kernel", Obs.Json.Str kernel);
              ("model", Obs.Json.Str model_name);
              ("engine", Obs.Json.Str (Pluto.Engine.choice_name engine));
              ("key", Obs.Json.Str key) ]
          else []
        in
        Obs.Trace.span ~cat:"serve" ~args "serve.request" (fun () ->
            match Cache.find_quiet t.cache key with
            | Some e ->
              Cache.count_hit t.cache;
              hit_response ~id ~key ~coalesced:false ~wall0 ?deadline_ms e
            | None -> (
              match Breaker.check t.breaker key with
              | Breaker.Open remaining ->
                if Obs.Trace.on () then
                  Obs.Trace.instant ~cat:"serve" "serve.breaker"
                    ~args:
                      [ ("key", Obs.Json.Str key);
                        ("state", Obs.Json.Str "reject") ];
                Protocol.error_response ~id ~code:"breaker"
                  ~message:
                    (Printf.sprintf
                       "circuit open for this fingerprint after repeated \
                        failures (retry in %.1fs)"
                       remaining)
              | Breaker.Closed ->
                Mutex.lock t.solver;
                Fun.protect
                  ~finally:(fun () -> Mutex.unlock t.solver)
                  (fun () ->
                    (* double-checked: someone may have solved this key
                       while we waited for the lock *)
                    match Cache.find_quiet t.cache key with
                    | Some e ->
                      Cache.count_hit t.cache;
                      hit_response ~id ~key ~coalesced:true ~wall0 ?deadline_ms
                        e
                    | None -> (
                      let budget =
                        Option.map
                          (fun ms -> Linalg.Budget.make ~ms ())
                          deadline_ms
                      in
                      match
                        Obs.Trace.span ~cat:"serve" "serve.schedule" (fun () ->
                            let t0 = Linalg.Clock.now () in
                            let payload, deps_fp, degraded =
                              solve ?budget ~kernel ~model ~size:n ~engine
                                ~reductions prog
                            in
                            ( payload,
                              deps_fp,
                              degraded,
                              Linalg.Clock.elapsed_ms ~since:t0 ))
                      with
                      | payload, deps_fp, degraded, solve_ms ->
                        Breaker.record_success t.breaker key;
                        let engine_used =
                          Option.value
                            (Option.bind
                               (Obs.Json.member "engine_used" payload)
                               Obs.Json.to_string_opt)
                            ~default:"none"
                        in
                        Telemetry.record_solve t.telemetry ~engine_used
                          ~solve_ms;
                        (* degraded = this request's deadline (or an
                           injected fault) shaped the result; it is
                           valid for this caller but must not be served
                           to anyone else *)
                        let cache_state =
                          if degraded then "uncached"
                          else begin
                            Cache.add t.cache key ~payload ~deps_fp ~solve_ms;
                            "miss"
                          end
                        in
                        Cache.count_miss t.cache;
                        let solver = solver_deltas () in
                        let wall_us = Linalg.Clock.elapsed_us ~since:wall0 in
                        Protocol.schedule_response ~id ~key ~cache_state
                          ~serve:
                            (Protocol.serve_section ?deadline_ms ~wall_us
                               ~solver ())
                          ~result:payload
                      | exception Pluto.Diagnostics.Error d ->
                        (* typed failure: deterministic for this content,
                           so it feeds the breaker; the diagnostics path
                           raises before mutating anything a reset-at-
                           solve-start would not fix *)
                        note_failure t key;
                        Protocol.error_response ~id
                          ~code:
                            (Pluto.Diagnostics.phase_name
                               d.Pluto.Diagnostics.phase
                            ^ ":" ^ d.Pluto.Diagnostics.code)
                          ~message:d.Pluto.Diagnostics.message
                      | exception e ->
                        (* the exception firewall: scrub global solver
                           state before the lock is released, then
                           answer typed instead of dying *)
                        recover t ~key e;
                        Protocol.error_response ~id ~code:"internal"
                          ~message:(Printexc.to_string e))))))))

let handle_request t ({ id; op } : Protocol.request) =
  match op with
  | Protocol.Ping -> Protocol.pong_response ~id
  | Protocol.Stats ->
    Protocol.stats_response ~id
      ~uptime_s:(Linalg.Clock.now () -. t.started)
      ~requests:(Atomic.get t.requests) (Cache.stats t.cache)
  | Protocol.Health ->
    let draining = Atomic.get t.stop in
    let backlog = backlog t in
    Protocol.health_response ~id
      ~ready:((not draining) && backlog <= t.config.max_pending)
      ~draining ~backlog ~max_pending:t.config.max_pending
      ~breaker_open:(Breaker.open_count t.breaker)
      ~uptime_s:(Linalg.Clock.now () -. t.started)
      ~snapshot:(Telemetry.snapshot t.telemetry)
      (Cache.stats t.cache)
  | Protocol.Metrics ->
    Protocol.metrics_response ~id ~text:(Telemetry.exposition t.telemetry)
  | Protocol.Shutdown ->
    (* idempotent: a second shutdown (op or signal) during drain finds
       the flag already set and just answers again *)
    Atomic.set t.stop true;
    t.on_stop ();
    Protocol.shutdown_response ~id
  | Protocol.Schedule { kernel; size; model; engine; reductions; deadline_ms } ->
    handle_schedule t ~id ~kernel ~size ~model ~engine ~reductions ~deadline_ms

let oversized_error t ~id =
  Protocol.error_response ~id ~code:"oversized"
    ~message:
      (Printf.sprintf "request line exceeds %d bytes" t.config.max_line_bytes)

(* mirror the hardening tallies into the process-wide counters next to
   the cache's sync *)
let sync_hardening t =
  Linalg.Counters.serve_shed := Atomic.get t.shed;
  Linalg.Counters.serve_recovered := Atomic.get t.recovered;
  Linalg.Counters.serve_breaker_trips := Breaker.trips t.breaker;
  Linalg.Counters.serve_breaker_rejects := Breaker.rejects t.breaker

(* --- per-request observability ------------------------------------------- *)

(* splitmix64 finalizer over (start time, sequence number): unique,
   cheap, and stable within a run — no global RNG state to contend on *)
let gen_trace_id t n =
  let mix z =
    let open Int64 in
    let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
    logxor z (shift_right_logical z 31)
  in
  Printf.sprintf "%016Lx"
    (mix
       (Int64.add
          (Int64.bits_of_float t.started)
          (Int64.mul (Int64.of_int (n + 1)) 0x9E3779B97F4A7C15L)))

(* Compact summary of a sampled request's captured events: completed
   spans (begin/end pairs of any category) with their durations, plus
   the raw event count. *)
let trace_json events =
  let spans = ref [] in
  let stack = ref [] in
  List.iter
    (fun (e : Obs.Trace.event) ->
      match e.Obs.Trace.ph with
      | Obs.Trace.B -> stack := (e.name, e.cat, e.ts) :: !stack
      | Obs.Trace.E -> (
        match !stack with
        | (name, cat, t0) :: rest when name = e.Obs.Trace.name ->
          stack := rest;
          spans :=
            Obs.Json.Obj
              [ ("name", Obs.Json.Str name);
                ("cat", Obs.Json.Str cat);
                ("us", Obs.Json.Float (Obs.Json.round2 (e.ts -. t0))) ]
            :: !spans
        | _ -> ())
      | Obs.Trace.I -> ())
    events;
  Obs.Json.Obj
    [ ("events", Obs.Json.Int (List.length events));
      ("spans", Obs.Json.List (List.rev !spans)) ]

(* The single exit point for every answered line: stamp the sampled
   trace into the envelope, feed telemetry (outcome counters, latency
   histograms) and the access log, render. The telemetry-off,
   no-access-log path costs two loads and a float subtraction. *)
let finish t ~wall0 ?trace response =
  let response =
    match trace with
    | None -> response
    | Some (tid, tr) -> (
      match response with
      | Obs.Json.Obj fields ->
        Obs.Json.Obj
          (fields @ [ ("trace_id", Obs.Json.Str tid); ("trace", tr) ])
      | j -> j)
  in
  (if Telemetry.enabled t.telemetry || t.access <> None then begin
     let wall_us = Linalg.Clock.elapsed_us ~since:wall0 in
     let outcome = Telemetry.record_response t.telemetry ~wall_us response in
     match t.access with
     | None -> ()
     | Some a ->
       Access.log a
         (Access.render ~ts:(Unix.gettimeofday ()) ~wall_us
            ~trace_id:(Option.map fst trace) ~outcome response)
   end);
  Protocol.to_line response

(* One request line in, one response line out (no trailing newline).
   Blank lines are ignored. Never raises: anything unexpected becomes
   an "internal" error envelope so the stream stays alive. This is the
   admission boundary: oversized lines, drain rejections and overload
   shedding are all decided here, before any solver work. *)
let handle_line t line =
  let wall0 = Linalg.Clock.now () in
  if String.length line > t.config.max_line_bytes then begin
    Atomic.incr t.requests;
    ignore (Atomic.fetch_and_add t.seq 1);
    Cache.sync_counters t.cache ~requests:(Atomic.get t.requests);
    Some (finish t ~wall0 (oversized_error t ~id:Obs.Json.Null))
  end
  else
    let line = String.trim line in
    if line = "" then None
    else begin
      Atomic.incr t.requests;
      Atomic.incr t.inflight;
      let n = Atomic.fetch_and_add t.seq 1 in
      let sampled =
        t.config.trace_sample > 0 && n mod t.config.trace_sample = 0
      in
      Fun.protect
        ~finally:(fun () -> Atomic.decr t.inflight)
        (fun () ->
          let compute () =
            match Protocol.parse_request line with
            | Error pe ->
              Protocol.error_response ~id:pe.Protocol.err_id
                ~code:pe.Protocol.code ~message:pe.Protocol.message
            | Ok req -> (
              match req.Protocol.op with
              | Protocol.Schedule _ when Atomic.get t.stop ->
                Protocol.error_response ~id:req.Protocol.id ~code:"draining"
                  ~message:"server is draining; schedule request rejected"
              | Protocol.Schedule _ when backlog t > t.config.max_pending ->
                Atomic.incr t.shed;
                if Obs.Trace.on () then
                  Obs.Trace.instant ~cat:"serve" "serve.shed"
                    ~args:
                      [ ("backlog", Obs.Json.Int (backlog t));
                        ("max_pending", Obs.Json.Int t.config.max_pending) ];
                Protocol.error_response ~id:req.Protocol.id ~code:"overloaded"
                  ~message:
                    (Printf.sprintf
                       "backlog %d over high-water mark %d; retry later"
                       (backlog t) t.config.max_pending)
              | _ -> (
                try handle_request t req
                with e ->
                  (* last-resort firewall for non-solve surprises (the
                     solve path recovered state already if it raised
                     past its own handler) *)
                  Protocol.error_response ~id:req.Protocol.id ~code:"internal"
                    ~message:(Printexc.to_string e)))
          in
          let response, trace =
            if sampled then begin
              (* per-domain capture: concurrent sampled requests on
                 other domains record independently, and the nested
                 capture inside [solve] still composes *)
              let resp, events = Obs.Trace.capture compute in
              (resp, Some (gen_trace_id t n, trace_json events))
            end
            else (compute (), None)
          in
          Cache.sync_counters t.cache ~requests:(Atomic.get t.requests);
          sync_hardening t;
          Some (finish t ~wall0 ?trace response))
    end

(* --- serving loops ------------------------------------------------------- *)

(* Bounded line framing: read up to [max] bytes of one
   newline-terminated line. An overlong line is consumed to its
   newline (or EOF) but never buffered past the cap, so hostile input
   cannot grow the heap; the caller answers it with a typed
   "oversized" error and the stream stays framed. *)
let read_line_bounded ic ~max =
  let buf = Buffer.create 256 in
  let rec go overflow =
    match input_char ic with
    | exception End_of_file ->
      if overflow then `Oversized
      else if Buffer.length buf = 0 then `Eof
      else `Line (Buffer.contents buf)
    | '\n' -> if overflow then `Oversized else `Line (Buffer.contents buf)
    | c ->
      if Buffer.length buf >= max then go true
      else begin
        Buffer.add_char buf c;
        go overflow
      end
  in
  go false

(* the response line for an input the reader refused to buffer — still
   routed through [finish] so it is counted and access-logged like
   every other answered line *)
let oversized_line t =
  let wall0 = Linalg.Clock.now () in
  Atomic.incr t.requests;
  ignore (Atomic.fetch_and_add t.seq 1);
  Cache.sync_counters t.cache ~requests:(Atomic.get t.requests);
  finish t ~wall0 (oversized_error t ~id:Obs.Json.Null)

(* Both SIGTERM and SIGINT mean: stop taking work, finish what is in
   flight, clean up, exit 0 — the contract the CI serve job asserts. A
   second signal during the drain is tolerated (logged, no raise, no
   re-entry). [immediate] is the stdio path, where the main thread sits
   in a blocking read that a flag cannot interrupt: there the handler
   cleans up and exits directly. *)
let install_drain_signals ?(immediate = false) t cleanup =
  let drain signal_name =
    if Atomic.compare_and_set t.stop false true then begin
      Printf.eprintf "wiseserve: caught %s, draining\n%!" signal_name;
      if immediate then begin
        cleanup ();
        exit 0
      end
      else t.on_stop ()
    end
    else Printf.eprintf "wiseserve: caught %s, already draining\n%!" signal_name
  in
  List.iter
    (fun (s, name) ->
      try Sys.set_signal s (Sys.Signal_handle (fun _ -> drain name))
      with Invalid_argument _ -> ())
    [ (Sys.sigterm, "SIGTERM"); (Sys.sigint, "SIGINT") ]

let emit_locked t oc line =
  Mutex.lock t.out;
  output_string oc line;
  output_char oc '\n';
  flush oc;
  Mutex.unlock t.out

let serve_stdio t =
  install_drain_signals ~immediate:true t (fun () -> close t);
  let max = t.config.max_line_bytes in
  if t.config.domains <= 1 then begin
    (* synchronous: responses come back in request order *)
    let rec loop () =
      if not (Atomic.get t.stop) then
        match read_line_bounded stdin ~max with
        | `Eof -> ()
        | `Oversized ->
          print_string (oversized_line t);
          print_newline ();
          flush stdout;
          loop ()
        | `Line line ->
          (match handle_line t line with
          | None -> ()
          | Some r ->
            print_string r;
            print_newline ();
            flush stdout);
          loop ()
    in
    loop ();
    close t
  end
  else begin
    (* pool: N domains drain a shared line queue; responses may
       interleave out of order (envelopes carry the request id) *)
    let jobs = Bqueue.create () in
    let worker () =
      let rec loop () =
        match Bqueue.pop jobs with
        | None -> ()
        | Some line ->
          Atomic.decr t.queued;
          (match handle_line t line with
          | None -> ()
          | Some r -> emit_locked t stdout r);
          loop ()
      in
      loop ()
    in
    let workers = List.init t.config.domains (fun _ -> Domain.spawn worker) in
    let rec feed () =
      if not (Atomic.get t.stop) then
        match read_line_bounded stdin ~max with
        | `Eof -> ()
        | `Oversized ->
          (* answered inline: the pool never sees the line *)
          emit_locked t stdout (oversized_line t);
          feed ()
        | `Line line ->
          Atomic.incr t.queued;
          Bqueue.push jobs line;
          feed ()
    in
    feed ();
    Bqueue.close jobs;
    List.iter Domain.join workers;
    close t
  end

(* Live connections, so a drain can unblock workers parked in a read:
   shutting down the receive side delivers EOF to the worker, which
   finishes its current response and closes. Entries are removed
   *before* the fd is closed — fd numbers are only recycled once no
   accept loop runs, and the registry never touches an fd after its
   removal. *)
module Conn_registry = struct
  type nonrec t = { tbl : (Unix.file_descr, unit) Hashtbl.t; m : Mutex.t }

  let create () = { tbl = Hashtbl.create 16; m = Mutex.create () }

  let locked r f =
    Mutex.lock r.m;
    Fun.protect ~finally:(fun () -> Mutex.unlock r.m) f

  let add r fd = locked r (fun () -> Hashtbl.replace r.tbl fd ())
  let remove r fd = locked r (fun () -> Hashtbl.remove r.tbl fd)

  let shutdown_all r =
    locked r (fun () ->
        Hashtbl.iter
          (fun fd () ->
            try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE
            with Unix.Unix_error _ -> ())
          r.tbl)
end

(* One accepted connection, served to EOF by a single worker. *)
let handle_conn t registry fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  (try
     let rec loop () =
       match read_line_bounded ic ~max:t.config.max_line_bytes with
       | `Eof -> ()
       | `Oversized ->
         output_string oc (oversized_line t);
         output_char oc '\n';
         flush oc;
         if not (Atomic.get t.stop) then loop ()
       | `Line line ->
         (match handle_line t line with
         | None -> ()
         | Some r ->
           output_string oc r;
           output_char oc '\n';
           flush oc);
         if not (Atomic.get t.stop) then loop ()
     in
     loop ()
   with
  | End_of_file | Sys_error _ -> ()
  | Unix.Unix_error _ -> ());
  Conn_registry.remove registry fd;
  close_out_noerr oc

let serve_socket t ~path =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  if Sys.file_exists path then Unix.unlink path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let cleanup () =
    close t;
    (try Unix.close sock with Unix.Unix_error _ -> ());
    if Sys.file_exists path then try Unix.unlink path with Sys_error _ -> ()
  in
  install_drain_signals t cleanup;
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 64;
  (* a shutdown request (or signal) must also unblock the accept loop
     below: poke our own socket so accept returns and sees the stop
     flag *)
  t.on_stop <-
    (fun () ->
      try
        let s = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect s (Unix.ADDR_UNIX path);
        Unix.close s
      with Unix.Unix_error _ -> ());
  let registry = Conn_registry.create () in
  let conns = Bqueue.create () in
  let worker () =
    let rec loop () =
      match Bqueue.pop conns with
      | None -> ()
      | Some fd ->
        Atomic.decr t.queued;
        handle_conn t registry fd;
        loop ()
    in
    loop ()
  in
  let workers =
    List.init (max 1 t.config.domains) (fun _ -> Domain.spawn worker)
  in
  let rec accept_loop () =
    if not (Atomic.get t.stop) then begin
      match Unix.accept sock with
      | fd, _ ->
        Conn_registry.add registry fd;
        Atomic.incr t.queued;
        Bqueue.push conns fd;
        accept_loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | exception Unix.Unix_error _ when Atomic.get t.stop -> ()
    end
  in
  accept_loop ();
  (* drain: no new connections are accepted; parked readers get EOF so
     workers finish their in-flight request and exit *)
  Conn_registry.shutdown_all registry;
  Bqueue.close conns;
  List.iter Domain.join workers;
  cleanup ()
