(* wiseserve: the long-lived scheduling daemon.

   Requests stream in as line-delimited JSON (stdio or a Unix socket),
   are keyed by Fingerprint and answered from the content-addressed
   Cache when possible. A miss runs the full certified pipeline —
   Fusion.Model.optimize under a nested trace capture (so the decision
   events become the response's explain chain), then wisecheck — and
   stores the rendered payload for every later request with the same
   content.

   Concurrency model (OCaml 5 domains): any number of workers serve
   hits and protocol ops concurrently — the cache has its own lock and
   the hit path touches no other shared state. Cold solves serialize
   under one solver lock, because the exact-arithmetic pipeline keeps
   process-wide state (the Farkas memo table, the pipeline counters,
   the trace sink); holding the lock also makes the per-request counter
   deltas exact — the response's "serve" section proves a hit performed
   zero LP pivots and zero B&B nodes, and a miss reports precisely its
   own solver work. Concurrent requests for the SAME key coalesce: the
   second requester blocks on the solver lock, re-probes the cache, and
   leaves with the first one's entry (a hit, never a duplicate solve). *)

type config = { domains : int; cache_capacity : int }

let default_config = { domains = 1; cache_capacity = 512 }

type t = {
  config : config;
  cache : Cache.t;
  solver : Mutex.t;  (* serializes cold solves and the global solver state *)
  out : Mutex.t;  (* serializes response emission in pool modes *)
  stop : bool Atomic.t;
  requests : int Atomic.t;
  started : float;
  mutable on_stop : unit -> unit;
      (* wakes a blocked accept loop after a shutdown request *)
}

let create ?(config = default_config) () =
  {
    config;
    cache = Cache.create ~capacity:config.cache_capacity;
    solver = Mutex.create ();
    out = Mutex.create ();
    stop = Atomic.make false;
    requests = Atomic.make 0;
    started = Unix.gettimeofday ();
    on_stop = (fun () -> ());
  }

let cache t = t.cache
let stopping t = Atomic.get t.stop

(* --- building the cached result payload --------------------------------- *)

let row_json = function
  | Pluto.Sched.Hyp h ->
    Obs.Json.Obj
      [ ("hyp", Obs.Json.List (List.map (fun c -> Obs.Json.Int c) (Array.to_list h))) ]
  | Pluto.Sched.Beta b -> Obs.Json.Obj [ ("beta", Obs.Json.Int b) ]

let sched_json (prog : Scop.Program.t) (sched : Pluto.Sched.t) =
  Obs.Json.List
    (Array.to_list
       (Array.mapi
          (fun i rows ->
            Obs.Json.Obj
              [ ("stmt", Obs.Json.Str prog.Scop.Program.stmts.(i).Scop.Statement.name);
                ("rows", Obs.Json.List (List.map row_json rows)) ])
          sched))

(* outermost fusion partition, statement id order; derived from the icc
   nests when the structural model served the request *)
let partition_json (opt : Fusion.Model.optimized) =
  let part =
    match (opt.Fusion.Model.scheduler, opt.Fusion.Model.icc) with
    | Some res, _ -> res.Pluto.Scheduler.outer_partition
    | None, Some r ->
      let n = Array.length r.Icc.Icc_model.prog.Scop.Program.stmts in
      let part = Array.make n 0 in
      List.iteri
        (fun idx (nst : Icc.Icc_model.nest) ->
          List.iter (fun id -> part.(id) <- idx) nst.Icc.Icc_model.stmts)
        r.Icc.Icc_model.nests;
      part
    | None, None -> [||]
  in
  Obs.Json.List (List.map (fun p -> Obs.Json.Int p) (Array.to_list part))

let artifacts (opt : Fusion.Model.optimized) =
  match (opt.Fusion.Model.scheduler, opt.Fusion.Model.icc) with
  | Some res, _ ->
    ( res.Pluto.Scheduler.prog,
      res.Pluto.Scheduler.all_deps,
      res.Pluto.Scheduler.sched )
  | None, Some r ->
    (r.Icc.Icc_model.prog, r.Icc.Icc_model.deps, r.Icc.Icc_model.sched)
  | None, None -> assert false

let wisecheck_json prog (r : Analysis.Wisecheck.report) =
  Obs.Json.Obj
    [ ("errors", Obs.Json.Int r.Analysis.Wisecheck.errors);
      ("warnings", Obs.Json.Int r.Analysis.Wisecheck.warnings);
      ("infos", Obs.Json.Int r.Analysis.Wisecheck.infos);
      ("certified", Obs.Json.Bool (Analysis.Wisecheck.certified r));
      ( "findings",
        Obs.Json.List
          (List.map (Analysis.Finding.json prog) r.Analysis.Wisecheck.findings) ) ]

let explain_lines ex =
  let text = Format.asprintf "%a" Fusion.Explain.pp ex in
  String.split_on_char '\n' text
  |> List.filter (fun l -> String.trim l <> "")
  |> List.map (fun l -> Obs.Json.Str l)

(* One cold solve. Must be called with [t.solver] held: it resets the
   process-wide counters and the Farkas memo so the payload (explain
   chain and counters included) is a pure function of the request
   content — which is what makes cached responses byte-identical to
   fresh solves. Returns the payload and the dependence-set
   fingerprint. *)
let solve ~kernel ~model ~size ~engine prog =
  Linalg.Counters.reset ();
  Pluto.Farkas.reset_cache ();
  let opt, events =
    Obs.Trace.capture (fun () -> Fusion.Model.optimize ~engine model prog)
  in
  let aprog, deps, sched = artifacts opt in
  let report = Analysis.Wisecheck.certify aprog deps sched opt.Fusion.Model.ast in
  let ex = { Fusion.Explain.kernel; model; outcome = opt; events } in
  let rung, degraded =
    match opt.Fusion.Model.resilience with
    | Some o -> (Fusion.Resilient.rung_name o.Fusion.Resilient.rung,
                 Fusion.Resilient.degraded o)
    | None -> ("structural", false)
  in
  (* requested choice plus the per-level solver that actually ran
     ("none" when the structural icc model served the request) *)
  let engine_used =
    match opt.Fusion.Model.scheduler with
    | Some res -> Pluto.Engine.kind_name res.Pluto.Scheduler.engine
    | None -> "none"
  in
  let payload =
    Obs.Json.Obj
      [ ("kernel", Obs.Json.Str kernel);
        ("model", Obs.Json.Str (Fusion.Model.name model));
        ("size", Obs.Json.Int size);
        ("engine", Obs.Json.Str (Pluto.Engine.choice_name engine));
        ("engine_used", Obs.Json.Str engine_used);
        ("rung", Obs.Json.Str rung);
        ("degraded", Obs.Json.Bool degraded);
        ("schedule", sched_json aprog sched);
        ("partition", partition_json opt);
        ("wisecheck", wisecheck_json aprog report);
        ("explain", Obs.Json.List (explain_lines ex));
        ( "counters",
          Obs.Json.Obj
            (List.map
               (fun (n, v) -> (n, Obs.Json.Int v))
               (Linalg.Counters.all_counters ())) ) ]
  in
  (payload, Fingerprint.deps_key deps)

(* --- request handling ---------------------------------------------------- *)

let solver_deltas () =
  let all = Linalg.Counters.all_counters () in
  List.map
    (fun n -> (n, Option.value (List.assoc_opt n all) ~default:0))
    Protocol.solver_counter_names

let hit_response ~id ~key ~coalesced ~wall0 (e : Cache.entry) =
  if Obs.Trace.on () then
    Obs.Trace.instant ~cat:"serve" "serve.cache-hit"
      ~args:
        [ ("key", Obs.Json.Str key); ("coalesced", Obs.Json.Bool coalesced) ];
  let wall_us = (Unix.gettimeofday () -. wall0) *. 1e6 in
  Protocol.schedule_response ~id ~key ~cache_state:"hit"
    ~serve:(Protocol.serve_section ~wall_us ~solver:Protocol.zero_solver)
    ~result:e.Cache.payload

let handle_schedule t ~id ~kernel ~size ~model:model_name ~engine:engine_name =
  let wall0 = Unix.gettimeofday () in
  match Kernels.Registry.find kernel with
  | exception Not_found ->
    Protocol.error_response ~id ~code:"usage"
      ~message:
        (Printf.sprintf "unknown kernel %S (see `wisefuse list')" kernel)
  | entry -> (
    match Fusion.Model.of_name model_name with
    | exception Not_found ->
      Protocol.error_response ~id ~code:"usage"
        ~message:(Printf.sprintf "unknown model %S" model_name)
    | model -> (
      match Pluto.Engine.of_string engine_name with
      | None ->
        Protocol.error_response ~id ~code:"usage"
          ~message:
            (Printf.sprintf
               "unknown engine %S (expected \"ilp\", \"lp-dfp\" or \"auto\")"
               engine_name)
      | Some engine -> (
      let n = Option.value size ~default:entry.Kernels.Registry.model_size in
      match entry.Kernels.Registry.program ~n () with
      | exception Invalid_argument msg ->
        Protocol.error_response ~id ~code:"usage"
          ~message:(Printf.sprintf "cannot build %s at size %d: %s" kernel n msg)
      | prog ->
        let key = Fingerprint.key ~engine ~model prog in
        let args =
          if Obs.Trace.on () then
            [ ("kernel", Obs.Json.Str kernel);
              ("model", Obs.Json.Str model_name);
              ("engine", Obs.Json.Str (Pluto.Engine.choice_name engine));
              ("key", Obs.Json.Str key) ]
          else []
        in
        Obs.Trace.span ~cat:"serve" ~args "serve.request" (fun () ->
            match Cache.find_quiet t.cache key with
            | Some e ->
              Cache.count_hit t.cache;
              hit_response ~id ~key ~coalesced:false ~wall0 e
            | None ->
              Mutex.lock t.solver;
              Fun.protect
                ~finally:(fun () -> Mutex.unlock t.solver)
                (fun () ->
                  (* double-checked: someone may have solved this key
                     while we waited for the lock *)
                  match Cache.find_quiet t.cache key with
                  | Some e ->
                    Cache.count_hit t.cache;
                    hit_response ~id ~key ~coalesced:true ~wall0 e
                  | None -> (
                    match
                      Obs.Trace.span ~cat:"serve" "serve.schedule" (fun () ->
                          let t0 = Unix.gettimeofday () in
                          let payload, deps_fp =
                            solve ~kernel ~model ~size:n ~engine prog
                          in
                          (payload, deps_fp, (Unix.gettimeofday () -. t0) *. 1e3))
                    with
                    | payload, deps_fp, solve_ms ->
                      Cache.add t.cache key ~payload ~deps_fp ~solve_ms;
                      Cache.count_miss t.cache;
                      let solver = solver_deltas () in
                      let wall_us = (Unix.gettimeofday () -. wall0) *. 1e6 in
                      Protocol.schedule_response ~id ~key ~cache_state:"miss"
                        ~serve:(Protocol.serve_section ~wall_us ~solver)
                        ~result:payload
                    | exception Pluto.Diagnostics.Error d ->
                      Protocol.error_response ~id
                        ~code:
                          (Pluto.Diagnostics.phase_name d.Pluto.Diagnostics.phase
                          ^ ":" ^ d.Pluto.Diagnostics.code)
                        ~message:d.Pluto.Diagnostics.message))))))

let handle_request t ({ id; op } : Protocol.request) =
  match op with
  | Protocol.Ping -> Protocol.pong_response ~id
  | Protocol.Stats ->
    Protocol.stats_response ~id
      ~uptime_s:(Unix.gettimeofday () -. t.started)
      ~requests:(Atomic.get t.requests) (Cache.stats t.cache)
  | Protocol.Shutdown ->
    Atomic.set t.stop true;
    t.on_stop ();
    Protocol.shutdown_response ~id
  | Protocol.Schedule { kernel; size; model; engine } ->
    handle_schedule t ~id ~kernel ~size ~model ~engine

(* One request line in, one response line out (no trailing newline).
   Blank lines are ignored. Never raises: anything unexpected becomes
   an "internal" error envelope so the stream stays alive. *)
let handle_line t line =
  let line = String.trim line in
  if line = "" then None
  else begin
    Atomic.incr t.requests;
    let response =
      match Protocol.parse_request line with
      | Error pe ->
        Protocol.error_response ~id:pe.Protocol.err_id ~code:pe.Protocol.code
          ~message:pe.Protocol.message
      | Ok req -> (
        try handle_request t req
        with e ->
          Protocol.error_response ~id:req.Protocol.id ~code:"internal"
            ~message:(Printexc.to_string e))
    in
    Cache.sync_counters t.cache ~requests:(Atomic.get t.requests);
    Some (Protocol.to_line response)
  end

(* --- serving loops ------------------------------------------------------- *)

(* A minimal blocking multi-producer/multi-consumer queue for the
   domain pools. [pop] returns [None] once the queue is closed and
   drained. *)
module Bqueue = struct
  type 'a t = {
    q : 'a Queue.t;
    m : Mutex.t;
    c : Condition.t;
    mutable closed : bool;
  }

  let create () =
    { q = Queue.create (); m = Mutex.create (); c = Condition.create (); closed = false }

  let push t x =
    Mutex.lock t.m;
    if not t.closed then begin
      Queue.push x t.q;
      Condition.signal t.c
    end;
    Mutex.unlock t.m

  let close t =
    Mutex.lock t.m;
    t.closed <- true;
    Condition.broadcast t.c;
    Mutex.unlock t.m

  let pop t =
    Mutex.lock t.m;
    while Queue.is_empty t.q && not t.closed do
      Condition.wait t.c t.m
    done;
    let r = if Queue.is_empty t.q then None else Some (Queue.pop t.q) in
    Mutex.unlock t.m;
    r
end

(* SIGTERM means: clean up and leave with status 0 — the contract the
   CI serve job asserts. Workers mid-request are abandoned; the cache
   is in-memory, so there is nothing durable to corrupt. *)
let install_sigterm cleanup =
  try
    Sys.set_signal Sys.sigterm
      (Sys.Signal_handle
         (fun _ ->
           prerr_endline "wiseserve: caught SIGTERM, shutting down";
           cleanup ();
           exit 0))
  with Invalid_argument _ -> ()

let emit_locked t oc line =
  Mutex.lock t.out;
  output_string oc line;
  output_char oc '\n';
  flush oc;
  Mutex.unlock t.out

let serve_stdio t =
  install_sigterm (fun () -> ());
  if t.config.domains <= 1 then begin
    (* synchronous: responses come back in request order *)
    try
      while not (Atomic.get t.stop) do
        let line = input_line stdin in
        match handle_line t line with
        | None -> ()
        | Some r ->
          print_string r;
          print_newline ();
          flush stdout
      done
    with End_of_file -> ()
  end
  else begin
    (* pool: N domains drain a shared line queue; responses may
       interleave out of order (envelopes carry the request id) *)
    let jobs = Bqueue.create () in
    let worker () =
      let rec loop () =
        match Bqueue.pop jobs with
        | None -> ()
        | Some line ->
          (match handle_line t line with
          | None -> ()
          | Some r -> emit_locked t stdout r);
          loop ()
      in
      loop ()
    in
    let workers = List.init t.config.domains (fun _ -> Domain.spawn worker) in
    (try
       while not (Atomic.get t.stop) do
         Bqueue.push jobs (input_line stdin)
       done
     with End_of_file -> ());
    Bqueue.close jobs;
    List.iter Domain.join workers
  end

(* One accepted connection, served to EOF by a single worker. *)
let handle_conn t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  (try
     let rec loop () =
       let line = input_line ic in
       (match handle_line t line with
       | None -> ()
       | Some r ->
         output_string oc r;
         output_char oc '\n';
         flush oc);
       if not (Atomic.get t.stop) then loop ()
     in
     loop ()
   with
  | End_of_file | Sys_error _ -> ()
  | Unix.Unix_error _ -> ());
  close_out_noerr oc

let serve_socket t ~path =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  if Sys.file_exists path then Unix.unlink path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let cleanup () =
    (try Unix.close sock with Unix.Unix_error _ -> ());
    if Sys.file_exists path then try Unix.unlink path with Sys_error _ -> ()
  in
  install_sigterm cleanup;
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 64;
  (* a shutdown request must also unblock the accept loop below: poke
     our own socket so accept returns and sees the stop flag *)
  t.on_stop <-
    (fun () ->
      try
        let s = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect s (Unix.ADDR_UNIX path);
        Unix.close s
      with Unix.Unix_error _ -> ());
  let conns = Bqueue.create () in
  let worker () =
    let rec loop () =
      match Bqueue.pop conns with
      | None -> ()
      | Some fd ->
        handle_conn t fd;
        loop ()
    in
    loop ()
  in
  let workers =
    List.init (max 1 t.config.domains) (fun _ -> Domain.spawn worker)
  in
  let rec accept_loop () =
    if not (Atomic.get t.stop) then begin
      match Unix.accept sock with
      | fd, _ ->
        Bqueue.push conns fd;
        accept_loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | exception Unix.Unix_error _ when Atomic.get t.stop -> ()
    end
  in
  accept_loop ();
  Bqueue.close conns;
  List.iter Domain.join workers;
  cleanup ()
