(** The content-addressed cross-request cache of the scheduling daemon.

    Maps {!Fingerprint} keys to full certified response payloads. The
    payload is an immutable {!Obs.Json.t} tree served verbatim, so a
    hit's rendered bytes are identical to the miss response that
    created the entry. Eviction is LRU under a fixed capacity.

    Every operation is safe to call from concurrent domains (one lock
    per cache). Hit/miss/eviction tallies are authoritative here and
    mirrored into [Linalg.Counters] by {!sync_counters}. *)

type entry = {
  payload : Obs.Json.t;  (** the cached ["result"] object *)
  deps_fp : string;
      (** {!Fingerprint.deps_key} of the dependence set the cold solve
          derived — audit metadata, not part of the lookup key *)
  solve_ms : float;  (** wall time of the cold solve behind this entry *)
  mutable last_used : int;  (** LRU stamp, managed by the cache *)
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  capacity : int;
}

type t

(** @raise Invalid_argument if [capacity < 1]. *)
val create : capacity:int -> t

(** Counting lookup: bumps the hit or miss tally. *)
val find : t -> string -> entry option

(** Lookup without hit/miss accounting — for the server's double-checked
    re-probe under its solver lock (the request was already counted). *)
val find_quiet : t -> string -> entry option

(** Count a hit/miss that {!find_quiet} deliberately didn't. *)
val count_hit : t -> unit

val count_miss : t -> unit

(** Insert (no-op if the key is already present), evicting the LRU
    entry when at capacity. *)
val add : t -> string -> payload:Obs.Json.t -> deps_fp:string -> solve_ms:float -> unit

val stats : t -> stats

(** Mirror the tallies (plus the caller's request count) into
    [Linalg.Counters.serve_*]. *)
val sync_counters : t -> requests:int -> unit
