(** Structured JSONL access log with a dedicated writer domain.

    One line per answered request: timestamp, echoed id, classified
    outcome, status/error code, fingerprint key, cache verdict, kernel,
    engine actually used, resilience rung, deadline and overrun, wall
    latency in microseconds, and the trace id when the request was
    sampled. {!log} is a lock-guarded queue push — request paths never
    block on file I/O. *)

type t

(** Open [path] for append (created if missing) and start the writer
    domain. @raise Sys_error if the path cannot be opened. *)
val open_ : path:string -> t

(** Enqueue one rendered line (no trailing newline). *)
val log : t -> string -> unit

(** Close the queue, join the writer (flushing what is queued) and
    close the file. Idempotent. *)
val close : t -> unit

(** Render one access-log line from a response envelope. [outcome] is
    the telemetry classification ({!Telemetry.record_response});
    [wall_us] the measured wall latency; [ts] a wall-clock timestamp
    in seconds. *)
val render :
  ts:float ->
  wall_us:float ->
  trace_id:string option ->
  outcome:string ->
  Obs.Json.t ->
  string
