(** Per-fingerprint circuit breaker: a TTL'd negative cache over solve
    failures.

    After [threshold] consecutive failures for one fingerprint the
    breaker opens: requests for that fingerprint are answered with a
    typed ["breaker"] error without touching the solver, until [ttl_s]
    elapses. Then it goes half-open — one probe is allowed; success
    closes it, failure re-opens it immediately. Thread-safe. *)

type t

type verdict =
  | Closed
  | Open of float  (** seconds until the half-open probe is allowed *)

val create : threshold:int -> ttl_s:float -> t

(** Admission check before a cold solve. An [Open] verdict also counts
    one reject. *)
val check : t -> string -> verdict

(** Record a solve failure; [true] when this one opened the breaker. *)
val record_failure : t -> string -> bool

(** A successful solve clears the key's failure run. *)
val record_success : t -> string -> unit

(** Fingerprints whose breaker is currently open (TTL not yet expired). *)
val open_count : t -> int

(** Total opens since creation. *)
val trips : t -> int

(** Total requests rejected while open. *)
val rejects : t -> int
