(* The line-delimited JSON protocol of the scheduling daemon.

   One request per line, one response line per request. Requests:

     {"id": 7, "kernel": "swim", "model": "wisefuse", "size": 16}
     {"id": 7, "kernel": "swim", "deadline_ms": 250}
     {"id": 8, "op": "ping"}
     {"id": 9, "op": "stats"}
     {"id": 10, "op": "health"}
     {"id": 11, "op": "shutdown"}

   "op" defaults to "schedule". "id" is any JSON value and is echoed
   verbatim (absent -> null); "model" defaults to "wisefuse"; "size"
   defaults to the kernel's registry model size; "engine" selects the
   per-level scheduling engine ("ilp" | "lp-dfp" | "auto", default
   "auto" — validated by the server, not here); "reductions" toggles
   reduction-aware legality ("on" | "off", default "off" — part of the
   content address, since it changes the schedule); "deadline_ms" is a
   per-request solve deadline (positive; the server applies a default
   when absent and a cap always). Unknown fields are ignored so
   clients can tag requests freely.

   Every response carries "id" and "status" ("ok" | "error"). A
   schedule response adds "key" (the content-address), "cache"
   ("hit" | "miss" | "uncached" — degraded results are served but not
   stored), "serve" (per-request counters: wall time, the solver work
   this request performed — zeros on a hit — and, when a deadline
   applied, "deadline_ms"/"overrun_ms") and "result" (the cached
   payload: schedule, partition, wisecheck verdict, explain chain,
   solve counters). Error responses add {"error": {"code", "message"}}
   and reuse the CLI's diagnostic exit vocabulary for codes, extended
   by the serving layer with "overloaded" (admission control),
   "breaker" (open circuit), "oversized" (line cap), "draining"
   (shutdown in progress) and "internal" (firewalled exception). *)

type op =
  | Schedule of {
      kernel : string;
      size : int option;
      model : string;
      engine : string;
      reductions : bool;
      deadline_ms : int option;
    }
  | Ping
  | Stats
  | Health
  | Metrics
  | Shutdown

type request = { id : Obs.Json.t; op : op }

type parse_error = { err_id : Obs.Json.t; code : string; message : string }

let member = Obs.Json.member

let id_of j = Option.value (member "id" j) ~default:Obs.Json.Null

let parse_request line =
  match Obs.Json.parse line with
  | Error msg ->
    Error { err_id = Obs.Json.Null; code = "parse"; message = msg }
  | Ok j -> (
    let id = id_of j in
    let str_field name = Option.bind (member name j) Obs.Json.to_string_opt in
    match Option.value (str_field "op") ~default:"schedule" with
    | "ping" -> Ok { id; op = Ping }
    | "stats" -> Ok { id; op = Stats }
    | "health" -> Ok { id; op = Health }
    | "metrics" -> Ok { id; op = Metrics }
    | "shutdown" -> Ok { id; op = Shutdown }
    | "schedule" -> (
      match str_field "kernel" with
      | None ->
        Error
          { err_id = id; code = "usage";
            message = "schedule request needs a \"kernel\" field" }
      | Some kernel -> (
        let size = Option.bind (member "size" j) Obs.Json.to_int_opt in
        let model = Option.value (str_field "model") ~default:"wisefuse" in
        let engine = Option.value (str_field "engine") ~default:"auto" in
        match Option.value (str_field "reductions") ~default:"off" with
        | ("on" | "off") as reductions_s -> (
          let reductions = reductions_s = "on" in
          match member "deadline_ms" j with
          | Some dj -> (
            match Obs.Json.to_int_opt dj with
            | Some d when d > 0 ->
              Ok
                { id;
                  op =
                    Schedule
                      { kernel; size; model; engine; reductions;
                        deadline_ms = Some d } }
            | _ ->
              Error
                { err_id = id; code = "usage";
                  message = "\"deadline_ms\" must be a positive integer" })
          | None ->
            Ok
              { id;
                op =
                  Schedule
                    { kernel; size; model; engine; reductions;
                      deadline_ms = None } })
        | other ->
          Error
            { err_id = id; code = "usage";
              message =
                Printf.sprintf
                  "\"reductions\" must be \"on\" or \"off\" (got %S)" other }))
    | other ->
      Error
        { err_id = id; code = "usage";
          message = Printf.sprintf "unknown op %S" other })

(* --- response envelopes -------------------------------------------------- *)

let ok_fields id rest = ("id", id) :: ("status", Obs.Json.Str "ok") :: rest

let error_response ~id ~code ~message =
  Obs.Json.Obj
    [ ("id", id); ("status", Obs.Json.Str "error");
      ( "error",
        Obs.Json.Obj
          [ ("code", Obs.Json.Str code); ("message", Obs.Json.Str message) ] ) ]

let pong_response ~id = Obs.Json.Obj (ok_fields id [ ("pong", Obs.Json.Bool true) ])

let shutdown_response ~id =
  Obs.Json.Obj (ok_fields id [ ("bye", Obs.Json.Bool true) ])

let stats_response ~id ~uptime_s ~requests (s : Cache.stats) =
  Obs.Json.Obj
    (ok_fields id
       [ ( "stats",
           Obs.Json.Obj
             [ ("uptime_s", Obs.Json.Float (Obs.Json.round2 uptime_s));
               ("requests", Obs.Json.Int requests);
               ("cache_hits", Obs.Json.Int s.Cache.hits);
               ("cache_misses", Obs.Json.Int s.Cache.misses);
               ("cache_evictions", Obs.Json.Int s.Cache.evictions);
               ("cache_entries", Obs.Json.Int s.Cache.entries);
               ("cache_capacity", Obs.Json.Int s.Cache.capacity) ] ) ])

(* Liveness/readiness snapshot for load balancers and the drain logic:
   "ready" means a schedule request arriving now would be admitted.
   [snapshot] is the compact telemetry summary (requests, hit, cold,
   degraded, errors, ops totals) so a health probe sees traffic shape
   without a full metrics scrape. *)
let health_response ~id ~ready ~draining ~backlog ~max_pending ~breaker_open
    ~uptime_s ~snapshot (s : Cache.stats) =
  Obs.Json.Obj
    (ok_fields id
       [ ( "health",
           Obs.Json.Obj
             [ ("ready", Obs.Json.Bool ready);
               ("draining", Obs.Json.Bool draining);
               ("backlog", Obs.Json.Int backlog);
               ("max_pending", Obs.Json.Int max_pending);
               ("breaker_open", Obs.Json.Int breaker_open);
               ("uptime_s", Obs.Json.Float (Obs.Json.round2 uptime_s));
               ("cache_entries", Obs.Json.Int s.Cache.entries);
               ( "snapshot",
                 Obs.Json.Obj
                   (List.map (fun (n, v) -> (n, Obs.Json.Int v)) snapshot) ) ] )
       ])

(* The Prometheus exposition rides inside the JSON envelope (the
   protocol stays strictly line-delimited); "wisefuse_cli metrics"
   unwraps the text for actual scrapers. *)
let metrics_response ~id ~text =
  Obs.Json.Obj
    (ok_fields id
       [ ( "metrics",
           Obs.Json.Obj
             [ ("format", Obs.Json.Str "prometheus-text-0.0.4");
               ("text", Obs.Json.Str text) ] ) ])

(* Per-request serving section: what THIS request cost. On a cache hit
   every solver counter is zero — the proof that hits bypass the ILP.
   When a deadline applied, the section also reports it and the overrun
   (wall time past the deadline, 0.0 when the request made it). *)
let serve_section ?(coalesced = false) ?deadline_ms ~wall_us ~solver () =
  let coalesced_fields =
    (* only marked when true, so ordinary hit envelopes keep their
       exact historical bytes *)
    if coalesced then [ ("coalesced", Obs.Json.Bool true) ] else []
  in
  let deadline_fields =
    match deadline_ms with
    | None -> []
    | Some d ->
      [ ("deadline_ms", Obs.Json.Int d);
        ( "overrun_ms",
          Obs.Json.Float
            (Obs.Json.round2 (Float.max 0.0 ((wall_us /. 1e3) -. float_of_int d)))
        ) ]
  in
  Obs.Json.Obj
    ((("wall_us", Obs.Json.Float (Obs.Json.round2 wall_us)) :: coalesced_fields)
    @ deadline_fields
    @ List.map (fun (n, v) -> (n, Obs.Json.Int v)) solver)

let zero_solver =
  [ ("lp_solves", 0); ("lp_pivots", 0); ("dual_pivots", 0); ("ilp_solves", 0);
    ("bb_nodes", 0) ]

let solver_counter_names = List.map fst zero_solver

let schedule_response ~id ~key ~cache_state ~serve ~result =
  Obs.Json.Obj
    (ok_fields id
       [ ("key", Obs.Json.Str key);
         ("cache", Obs.Json.Str cache_state);
         ("serve", serve);
         ("result", result) ])

let to_line j = Obs.Json.to_string j
