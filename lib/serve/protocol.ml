(* The line-delimited JSON protocol of the scheduling daemon.

   One request per line, one response line per request. Requests:

     {"id": 7, "kernel": "swim", "model": "wisefuse", "size": 16}
     {"id": 8, "op": "ping"}
     {"id": 9, "op": "stats"}
     {"id": 10, "op": "shutdown"}

   "op" defaults to "schedule". "id" is any JSON value and is echoed
   verbatim (absent -> null); "model" defaults to "wisefuse"; "size"
   defaults to the kernel's registry model size; "engine" selects the
   per-level scheduling engine ("ilp" | "lp-dfp" | "auto", default
   "auto" — validated by the server, not here). Unknown fields are
   ignored so clients can tag requests freely.

   Every response carries "id" and "status" ("ok" | "error"). A
   schedule response adds "key" (the content-address), "cache"
   ("hit" | "miss"), "serve" (per-request counters: wall time and the
   solver work this request performed — zeros on a hit) and "result"
   (the cached payload: schedule, partition, wisecheck verdict, explain
   chain, solve counters). Error responses add
   {"error": {"code", "message"}} and reuse the CLI's diagnostic exit
   vocabulary for codes. *)

type op =
  | Schedule of {
      kernel : string;
      size : int option;
      model : string;
      engine : string;
    }
  | Ping
  | Stats
  | Shutdown

type request = { id : Obs.Json.t; op : op }

type parse_error = { err_id : Obs.Json.t; code : string; message : string }

let member = Obs.Json.member

let id_of j = Option.value (member "id" j) ~default:Obs.Json.Null

let parse_request line =
  match Obs.Json.parse line with
  | Error msg ->
    Error { err_id = Obs.Json.Null; code = "parse"; message = msg }
  | Ok j -> (
    let id = id_of j in
    let str_field name = Option.bind (member name j) Obs.Json.to_string_opt in
    match Option.value (str_field "op") ~default:"schedule" with
    | "ping" -> Ok { id; op = Ping }
    | "stats" -> Ok { id; op = Stats }
    | "shutdown" -> Ok { id; op = Shutdown }
    | "schedule" -> (
      match str_field "kernel" with
      | None ->
        Error
          { err_id = id; code = "usage";
            message = "schedule request needs a \"kernel\" field" }
      | Some kernel ->
        let size = Option.bind (member "size" j) Obs.Json.to_int_opt in
        let model = Option.value (str_field "model") ~default:"wisefuse" in
        let engine = Option.value (str_field "engine") ~default:"auto" in
        Ok { id; op = Schedule { kernel; size; model; engine } })
    | other ->
      Error
        { err_id = id; code = "usage";
          message = Printf.sprintf "unknown op %S" other })

(* --- response envelopes -------------------------------------------------- *)

let ok_fields id rest = ("id", id) :: ("status", Obs.Json.Str "ok") :: rest

let error_response ~id ~code ~message =
  Obs.Json.Obj
    [ ("id", id); ("status", Obs.Json.Str "error");
      ( "error",
        Obs.Json.Obj
          [ ("code", Obs.Json.Str code); ("message", Obs.Json.Str message) ] ) ]

let pong_response ~id = Obs.Json.Obj (ok_fields id [ ("pong", Obs.Json.Bool true) ])

let shutdown_response ~id =
  Obs.Json.Obj (ok_fields id [ ("bye", Obs.Json.Bool true) ])

let stats_response ~id ~uptime_s ~requests (s : Cache.stats) =
  Obs.Json.Obj
    (ok_fields id
       [ ( "stats",
           Obs.Json.Obj
             [ ("uptime_s", Obs.Json.Float (Obs.Json.round2 uptime_s));
               ("requests", Obs.Json.Int requests);
               ("cache_hits", Obs.Json.Int s.Cache.hits);
               ("cache_misses", Obs.Json.Int s.Cache.misses);
               ("cache_evictions", Obs.Json.Int s.Cache.evictions);
               ("cache_entries", Obs.Json.Int s.Cache.entries);
               ("cache_capacity", Obs.Json.Int s.Cache.capacity) ] ) ])

(* Per-request serving section: what THIS request cost. On a cache hit
   every solver counter is zero — the proof that hits bypass the ILP. *)
let serve_section ~wall_us ~solver =
  Obs.Json.Obj
    (("wall_us", Obs.Json.Float (Obs.Json.round2 wall_us))
     :: List.map (fun (n, v) -> (n, Obs.Json.Int v)) solver)

let zero_solver =
  [ ("lp_solves", 0); ("lp_pivots", 0); ("dual_pivots", 0); ("ilp_solves", 0);
    ("bb_nodes", 0) ]

let solver_counter_names = List.map fst zero_solver

let schedule_response ~id ~key ~cache_state ~serve ~result =
  Obs.Json.Obj
    (ok_fields id
       [ ("key", Obs.Json.Str key);
         ("cache", Obs.Json.Str cache_state);
         ("serve", serve);
         ("result", result) ])

let to_line j = Obs.Json.to_string j
