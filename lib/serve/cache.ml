(* The content-addressed cross-request cache.

   Maps a Fingerprint key to the full certified response payload (an
   immutable Obs.Json tree — embedding the same tree into every
   envelope guarantees hit responses are byte-identical to the miss
   that created them). Eviction is LRU over a capacity bound: each
   access stamps a monotonically increasing tick, and inserting past
   capacity evicts the smallest stamp. The scan is O(capacity), paid
   only on insertion of a new entry into a full cache — at serving
   capacities (hundreds to thousands of entries) this is noise next to
   the ILP solve that the insertion just performed.

   All operations take the cache lock, so any number of domains can hit
   concurrently. Tallies are kept under the same lock (authoritative)
   and mirrored into Linalg.Counters by [sync_counters]. *)

type entry = {
  payload : Obs.Json.t;  (* the cached "result" object, served verbatim *)
  deps_fp : string;  (* Fingerprint.deps_key of the solve's dependence set *)
  solve_ms : float;  (* wall time of the cold solve that built this entry *)
  mutable last_used : int;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  capacity : int;
}

type t = {
  capacity : int;
  tbl : (string, entry) Hashtbl.t;
  lock : Mutex.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be >= 1";
  {
    capacity;
    tbl = Hashtbl.create (min capacity 1024);
    lock = Mutex.create ();
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Quiet lookup: no hit/miss accounting. The server uses this for the
   double-checked lookup under its solver lock, where a second find for
   the same request must not double-count. *)
let find_quiet t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some e ->
        t.tick <- t.tick + 1;
        e.last_used <- t.tick;
        Some e
      | None -> None)

let count_hit t = locked t (fun () -> t.hits <- t.hits + 1)
let count_miss t = locked t (fun () -> t.misses <- t.misses + 1)

let find t key =
  match find_quiet t key with
  | Some e ->
    count_hit t;
    Some e
  | None ->
    count_miss t;
    None

let evict_lru t =
  (* called with the lock held *)
  let victim = ref None in
  Hashtbl.iter
    (fun k e ->
      match !victim with
      | Some (_, best) when best <= e.last_used -> ()
      | _ -> victim := Some (k, e.last_used))
    t.tbl;
  match !victim with
  | Some (k, _) ->
    Hashtbl.remove t.tbl k;
    t.evictions <- t.evictions + 1
  | None -> ()

let add t key ~payload ~deps_fp ~solve_ms =
  locked t (fun () ->
      if not (Hashtbl.mem t.tbl key) then begin
        if Hashtbl.length t.tbl >= t.capacity then evict_lru t;
        t.tick <- t.tick + 1;
        Hashtbl.add t.tbl key { payload; deps_fp; solve_ms; last_used = t.tick }
      end)

let stats t =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        entries = Hashtbl.length t.tbl;
        capacity = t.capacity;
      })

(* Mirror the authoritative tallies into the process-wide counters so
   `--stats` and the bench records see serving traffic alongside the
   solver counters. Plain [:=]: the daemon resets solver counters per
   cold solve, and re-syncing after every request keeps these correct
   regardless. *)
let sync_counters t ~requests =
  let s = stats t in
  Linalg.Counters.serve_requests := requests;
  Linalg.Counters.serve_cache_hits := s.hits;
  Linalg.Counters.serve_cache_misses := s.misses;
  Linalg.Counters.serve_cache_evictions := s.evictions
