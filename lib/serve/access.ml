(* Structured JSON access log: one JSONL line per answered request,
   written by a dedicated writer domain so request paths never block
   on file I/O — [log] is a queue push, and a slow or stalled disk
   backs up the queue, not the responders.

   Every field is derived from the response envelope (plus the wall
   duration and optional trace id the server measured), so the log
   needs no second bookkeeping path that could disagree with what the
   client saw. *)

type t = {
  q : string Bqueue.t;
  writer : unit Domain.t;
  closed : bool Atomic.t;
}

let open_ ~path =
  (* append mode: a restarted daemon extends the log *)
  let oc = open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path in
  let q = Bqueue.create () in
  let writer =
    Domain.spawn (fun () ->
        let rec loop () =
          match Bqueue.pop q with
          | None -> ()
          | Some line ->
            output_string oc line;
            output_char oc '\n';
            (* flush per line: the log is a forensic record, and CI
               reads it the moment the daemon exits *)
            flush oc;
            loop ()
        in
        loop ();
        close_out_noerr oc)
  in
  { q; writer; closed = Atomic.make false }

let log t line = Bqueue.push t.q line

let close t =
  (* idempotent: the stdio immediate-signal path and the normal exit
     path can both get here *)
  if Atomic.compare_and_set t.closed false true then begin
    Bqueue.close t.q;
    Domain.join t.writer
  end

(* --- line rendering ------------------------------------------------------ *)

let member = Obs.Json.member
let str_of name j = Option.bind (member name j) Obs.Json.to_string_opt

let opt_field name v f =
  match v with None -> [] | Some v -> [ (name, f v) ]

let render ~ts ~wall_us ~trace_id ~outcome response =
  let serve = member "serve" response in
  let result = member "result" response in
  let sub sec name = Option.bind sec (member name) in
  let fields =
    [ ("ts", Obs.Json.Float ts);
      ("id", Option.value (member "id" response) ~default:Obs.Json.Null);
      ("outcome", Obs.Json.Str outcome);
      ( "status",
        Obs.Json.Str (Option.value (str_of "status" response) ~default:"?") ) ]
    @ opt_field "code"
        (Option.bind (member "error" response) (fun e ->
             Option.bind (member "code" e) Obs.Json.to_string_opt))
        (fun c -> Obs.Json.Str c)
    @ opt_field "key" (str_of "key" response) (fun k -> Obs.Json.Str k)
    @ opt_field "cache" (str_of "cache" response) (fun c -> Obs.Json.Str c)
    @ opt_field "kernel"
        (Option.bind result (fun r -> str_of "kernel" r))
        (fun k -> Obs.Json.Str k)
    @ opt_field "engine"
        (Option.bind result (fun r -> str_of "engine_used" r))
        (fun e -> Obs.Json.Str e)
    @ opt_field "rung"
        (Option.bind result (fun r -> str_of "rung" r))
        (fun r -> Obs.Json.Str r)
    @ opt_field "deadline_ms"
        (Option.bind (sub serve "deadline_ms") Obs.Json.to_int_opt)
        (fun d -> Obs.Json.Int d)
    @ opt_field "overrun_ms"
        (Option.bind (sub serve "overrun_ms") Obs.Json.to_float_opt)
        (fun o -> Obs.Json.Float o)
    @ [ ("wall_us", Obs.Json.Float (Obs.Json.round2 wall_us)) ]
    @ opt_field "trace_id" trace_id (fun id -> Obs.Json.Str id)
  in
  Obs.Json.to_string (Obs.Json.Obj fields)
