(** wiseserve: the long-lived fusion-as-a-service scheduling daemon.

    Line-delimited JSON requests (stdio or a Unix socket) are keyed by
    {!Fingerprint} and answered from the content-addressed {!Cache}; a
    miss runs the full certified pipeline (optimize under a nested
    trace capture + wisecheck) and stores the payload for every later
    request with the same content.

    Concurrency: cache hits and protocol ops are served concurrently by
    any number of OCaml 5 domains; cold solves serialize under one
    solver lock (the exact-arithmetic pipeline keeps process-wide
    state), which also makes the per-request counter deltas in each
    response exact — hits provably perform zero LP pivots and zero B&B
    nodes. Concurrent misses for the same key coalesce into one solve.

    Hardening: every request solves under a fresh deadline budget
    (client ["deadline_ms"], server default/cap) and degrades down the
    resilience ladder instead of monopolizing the solver; degraded
    results are served (["uncached"]) but never stored. Exceptions
    escaping a solve are firewalled — the global solver state is
    scrubbed before the solver lock is released and the client gets a
    typed ["internal"] error; repeated failures per fingerprint trip a
    TTL'd circuit breaker ({!Breaker}). Admission control sheds
    schedule requests (["overloaded"]) past [config.max_pending];
    oversized lines answer ["oversized"] without being buffered;
    SIGTERM/SIGINT drain and exit 0.

    Trace spans (category ["serve"]): [serve.request] wraps each
    schedule request, [serve.cache-hit] marks hits (with the key),
    [serve.schedule] wraps each cold solve; instants [serve.shed],
    [serve.breaker] (open/reject) and [serve.recovered] mark the
    hardening paths. All null-sink-guarded. *)

type config = {
  domains : int;
  cache_capacity : int;
  max_pending : int;
      (** admission high-water mark on the pending-work gauge
          (in-flight + queued); schedule requests past it are shed with
          a typed ["overloaded"] error *)
  max_line_bytes : int;
      (** request lines longer than this answer ["oversized"] and are
          never buffered in full *)
  default_deadline_ms : int option;
      (** solve deadline applied when the client sends none;
          [None] = unlimited *)
  max_deadline_ms : int;  (** cap on client-requested deadlines *)
  breaker_threshold : int;
      (** consecutive same-fingerprint failures that open the breaker *)
  breaker_ttl_s : float;  (** how long an open breaker rejects *)
  metrics : bool;
      (** mint live {!Telemetry} instruments, scraped by the
          ["metrics"] op; [false] mints no-op instruments (the
          measured zero-cost disabled path) *)
  trace_sample : int;
      (** capture a span trace for every Nth answered line (0 =
          never); sampled envelopes gain ["trace_id"] and a compact
          ["trace"] summary *)
  access_log : string option;
      (** JSONL access log path, written by a dedicated writer domain
          (one line per answered request); [None] = off *)
}

val default_config : config
(** 1 domain, 512 cache entries, 64 pending, 1 MiB lines, 10 s default
    deadline (300 s cap), breaker 3 failures / 30 s TTL, metrics on,
    no trace sampling, no access log. *)

type t

val create : ?config:config -> unit -> t
(** Builds the cache, breaker and telemetry registry, opens the access
    log (raising [Sys_error] if its path cannot be opened), and — when
    [config.metrics] — installs the process-wide stage observer
    ([Linalg.Counters.set_stage_observer]), so the most recently
    created metrics-enabled server owns per-stage latency. *)

val cache : t -> Cache.t
val breaker : t -> Breaker.t
val telemetry : t -> Telemetry.t

(** Flush and close the access log (idempotent; no-op without one).
    Every serving loop calls it on exit; tests driving {!handle_line}
    directly call it before reading the log file. *)
val close : t -> unit

(** Has a shutdown request (or drain signal) been processed? *)
val stopping : t -> bool

(** The pending-work gauge: requests in flight plus lines/connections
    queued for the worker pool. *)
val backlog : t -> int

(** [handle_line t line] handles one request line and returns the
    response line (no trailing newline), or [None] for blank input.
    Never raises — internal failures become ["internal"] error
    envelopes (with the solver state scrubbed first). Safe to call from
    concurrent domains; this is also the entry point the tests and the
    bench harness drive directly. *)
val handle_line : t -> string -> string option

(** Bounded line framing: one newline-terminated line of at most [max]
    bytes. Overlong input is consumed (never buffered past the cap)
    and reported as [`Oversized]. Exposed for the serving loops and
    their tests. *)
val read_line_bounded :
  in_channel -> max:int -> [ `Line of string | `Oversized | `Eof ]

(** Serve requests from stdin to stdout until EOF or a shutdown
    request. With [config.domains > 1], a domain pool drains the input
    and responses may interleave out of request order (envelopes carry
    the request id). SIGTERM/SIGINT exit 0 (the blocking stdin read
    cannot observe a drain flag). *)
val serve_stdio : t -> unit

(** Listen on a Unix domain socket ([path] is created, and removed on
    shutdown), serving each accepted connection to EOF on a pool of
    [config.domains] workers. SIGPIPE is ignored; SIGTERM/SIGINT drain:
    in-flight requests finish, parked connection readers are shut down,
    the socket is unlinked and the process exits 0. A second signal or
    shutdown op during the drain is tolerated. *)
val serve_socket : t -> path:string -> unit
