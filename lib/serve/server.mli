(** wiseserve: the long-lived fusion-as-a-service scheduling daemon.

    Line-delimited JSON requests (stdio or a Unix socket) are keyed by
    {!Fingerprint} and answered from the content-addressed {!Cache}; a
    miss runs the full certified pipeline (optimize under a nested
    trace capture + wisecheck) and stores the payload for every later
    request with the same content.

    Concurrency: cache hits and protocol ops are served concurrently by
    any number of OCaml 5 domains; cold solves serialize under one
    solver lock (the exact-arithmetic pipeline keeps process-wide
    state), which also makes the per-request counter deltas in each
    response exact — hits provably perform zero LP pivots and zero B&B
    nodes. Concurrent misses for the same key coalesce into one solve.

    Trace spans (category ["serve"]): [serve.request] wraps each
    schedule request, [serve.cache-hit] marks hits (with the key),
    [serve.schedule] wraps each cold solve. All null-sink-guarded. *)

type config = { domains : int; cache_capacity : int }

val default_config : config
(** 1 domain, 512 cache entries. *)

type t

val create : ?config:config -> unit -> t
val cache : t -> Cache.t

(** Has a shutdown request been processed? *)
val stopping : t -> bool

(** [handle_line t line] handles one request line and returns the
    response line (no trailing newline), or [None] for blank input.
    Never raises — internal failures become ["internal"] error
    envelopes. Safe to call from concurrent domains; this is also the
    entry point the tests and the bench harness drive directly. *)
val handle_line : t -> string -> string option

(** Serve requests from stdin to stdout until EOF or a shutdown
    request. With [config.domains > 1], a domain pool drains the input
    and responses may interleave out of request order (envelopes carry
    the request id). Installs a SIGTERM handler that exits 0. *)
val serve_stdio : t -> unit

(** Listen on a Unix domain socket ([path] is created, and removed on
    shutdown), serving each accepted connection to EOF on a pool of
    [config.domains] workers. SIGPIPE is ignored; SIGTERM exits 0 after
    removing the socket. *)
val serve_socket : t -> path:string -> unit
