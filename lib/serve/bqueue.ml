(* A minimal blocking multi-producer/multi-consumer queue for the
   daemon's domain pools (line workers, connection workers, the access
   log writer). [pop] returns [None] once the queue is closed and
   drained. *)

type 'a t = {
  q : 'a Queue.t;
  m : Mutex.t;
  c : Condition.t;
  mutable closed : bool;
}

let create () =
  { q = Queue.create (); m = Mutex.create (); c = Condition.create ();
    closed = false }

let push t x =
  Mutex.lock t.m;
  if not t.closed then begin
    Queue.push x t.q;
    Condition.signal t.c
  end;
  Mutex.unlock t.m

let close t =
  Mutex.lock t.m;
  t.closed <- true;
  Condition.broadcast t.c;
  Mutex.unlock t.m

let pop t =
  Mutex.lock t.m;
  while Queue.is_empty t.q && not t.closed do
    Condition.wait t.c t.m
  done;
  let r = if Queue.is_empty t.q then None else Some (Queue.pop t.q) in
  Mutex.unlock t.m;
  r
