(* The daemon's instrument bundle: every serve outcome, the protocol
   ops, latency histograms split by cache class, per-engine solve
   latency, per-stage pipeline latency, and callback-sampled
   cache/breaker/backlog gauges — all in one [Obs.Metrics] registry
   scraped by the "metrics" protocol op.

   Classification happens in exactly one place ([classify], from the
   response envelope the client is about to receive), so the scrape
   totals reconcile with the wire by construction:

     wisefuse_serve_requests_total
       == sum over wisefuse_serve_outcomes_total{outcome=*}
        + sum over wisefuse_serve_ops_total{op=*}

   — an invariant the soak bench asserts against its own request
   ledger, hostile traffic included.

   Unlike [Linalg.Counters] (reset per cold solve for deterministic
   per-request deltas, scrubbed by fault recovery), these instruments
   are never reset: scrape totals are monotone across recoveries,
   which the soak bench also asserts. *)

module M = Obs.Metrics

let outcome_labels =
  [ "hit"; "coalesced"; "cold"; "degraded"; "shed"; "oversized"; "breaker";
    "internal"; "draining"; "parse"; "usage"; "diagnostic"; "error" ]

let op_labels = [ "ping"; "stats"; "health"; "metrics"; "shutdown"; "other" ]

let engine_labels = [ "ilp"; "lp-dfp"; "none" ]

type t = {
  reg : M.registry;
  requests : M.counter;
  outcomes : (string * M.counter) list;
  ops : (string * M.counter) list;
  degraded : (string * M.counter) list;  (* by resilience rung *)
  overruns : M.counter;
  dur_hit : M.histogram;
  dur_cold : M.histogram;
  dur_other : M.histogram;
  solve : (string * M.histogram) list;  (* by engine actually used *)
  stage_m : Mutex.t;
  stages : (string, M.histogram) Hashtbl.t;  (* by pipeline stage *)
}

type sources = {
  cache_stats : unit -> Cache.stats;
  breaker_open : unit -> int;
  breaker_trips : unit -> int;
  breaker_rejects : unit -> int;
  inflight : unit -> int;
  queued : unit -> int;
  shed_total : unit -> int;
  recovered_total : unit -> int;
  uptime_s : unit -> float;
}

let create ?(enabled = true) (src : sources) =
  let reg = M.create ~enabled () in
  let counters ~name ~help labels key =
    List.map
      (fun l -> (l, M.counter reg ~name ~help ~labels:[ (key, l) ] ()))
      labels
  in
  let histograms ~name ~help labels key =
    List.map
      (fun l -> (l, M.histogram reg ~name ~help ~labels:[ (key, l) ] ()))
      labels
  in
  let requests =
    M.counter reg ~name:"wisefuse_serve_requests_total"
      ~help:"Request lines answered (every outcome and protocol op)." ()
  in
  let outcomes =
    counters ~name:"wisefuse_serve_outcomes_total"
      ~help:"Answered requests by serve outcome." outcome_labels "outcome"
  in
  let ops =
    counters ~name:"wisefuse_serve_ops_total"
      ~help:"Protocol ops answered, by op." op_labels "op"
  in
  let degraded =
    counters ~name:"wisefuse_serve_degraded_total"
      ~help:"Degraded (uncached) schedule responses by resilience rung."
      Fusion.Resilient.rung_names "rung"
  in
  let overruns =
    M.counter reg ~name:"wisefuse_serve_overruns_total"
      ~help:"Requests whose wall time exceeded their deadline budget." ()
  in
  let dur cls =
    M.histogram reg ~name:"wisefuse_request_duration_us"
      ~help:
        "Request wall latency in microseconds, by cache class (hit \
         includes coalesced)."
      ~labels:[ ("class", cls) ] ()
  in
  let dur_hit = dur "hit" in
  let dur_cold = dur "cold" in
  let dur_other = dur "other" in
  let solve =
    histograms ~name:"wisefuse_solve_duration_us"
      ~help:"Cold-solve wall latency in microseconds by engine used."
      engine_labels "engine"
  in
  (* callback-sampled views of tallies that already live elsewhere
     (cache lock, breaker table, server atomics): sampled at scrape
     time, monotone because their sources are *)
  let cs f = fun () -> f (src.cache_stats ()) in
  M.counter_fn reg ~name:"wisefuse_cache_hits_total"
    ~help:"Content-addressed cache hits." (cs (fun s -> s.Cache.hits));
  M.counter_fn reg ~name:"wisefuse_cache_misses_total"
    ~help:"Content-addressed cache misses." (cs (fun s -> s.Cache.misses));
  M.counter_fn reg ~name:"wisefuse_cache_evictions_total"
    ~help:"LRU evictions." (cs (fun s -> s.Cache.evictions));
  M.gauge_fn reg ~name:"wisefuse_cache_entries"
    ~help:"Entries currently cached." (cs (fun s -> s.Cache.entries));
  M.gauge_fn reg ~name:"wisefuse_cache_capacity" ~help:"Cache capacity."
    (cs (fun s -> s.Cache.capacity));
  M.counter_fn reg ~name:"wisefuse_breaker_trips_total"
    ~help:"Circuit-breaker state transitions to open." src.breaker_trips;
  M.counter_fn reg ~name:"wisefuse_breaker_rejects_total"
    ~help:"Requests rejected while a breaker was open." src.breaker_rejects;
  M.gauge_fn reg ~name:"wisefuse_breaker_open"
    ~help:"Fingerprints with an open breaker." src.breaker_open;
  M.counter_fn reg ~name:"wisefuse_shed_total"
    ~help:"Schedule requests shed by admission control." src.shed_total;
  M.counter_fn reg ~name:"wisefuse_recovered_total"
    ~help:"Exceptions firewalled by the solve-path recovery."
    src.recovered_total;
  M.gauge_fn reg ~name:"wisefuse_inflight"
    ~help:"Requests admitted and not yet answered." src.inflight;
  M.gauge_fn reg ~name:"wisefuse_queued"
    ~help:"Lines/connections waiting in a worker pool queue." src.queued;
  M.gauge_fn reg ~name:"wisefuse_uptime_seconds" ~help:"Daemon uptime."
    (fun () -> int_of_float (src.uptime_s ()));
  {
    reg;
    requests;
    outcomes;
    ops;
    degraded;
    overruns;
    dur_hit;
    dur_cold;
    dur_other;
    solve;
    stage_m = Mutex.create ();
    stages = Hashtbl.create 16;
  }

let enabled t = M.enabled t.reg

(* --- classification ------------------------------------------------------ *)

type class_ = Outcome of string | Op of string

let member = Obs.Json.member
let str name j = Option.bind (member name j) Obs.Json.to_string_opt

let classify response =
  match str "status" response with
  | Some "ok" ->
    if member "key" response <> None then (
      match str "cache" response with
      | Some "hit" ->
        let coalesced =
          match member "serve" response with
          | Some s ->
            Option.bind (member "coalesced" s) Obs.Json.to_bool_opt
            = Some true
          | None -> false
        in
        if coalesced then Outcome "coalesced" else Outcome "hit"
      | Some "miss" -> Outcome "cold"
      | Some "uncached" -> Outcome "degraded"
      | _ -> Outcome "error")
    else if member "pong" response <> None then Op "ping"
    else if member "stats" response <> None then Op "stats"
    else if member "health" response <> None then Op "health"
    else if member "metrics" response <> None then Op "metrics"
    else if member "bye" response <> None then Op "shutdown"
    else Op "other"
  | Some "error" -> (
    let code =
      Option.value
        (Option.bind (member "error" response) (fun e ->
             Option.bind (member "code" e) Obs.Json.to_string_opt))
        ~default:"?"
    in
    match code with
    | "overloaded" -> Outcome "shed"
    | "oversized" -> Outcome "oversized"
    | "breaker" -> Outcome "breaker"
    | "internal" -> Outcome "internal"
    | "draining" -> Outcome "draining"
    | "parse" -> Outcome "parse"
    | "usage" -> Outcome "usage"
    | c when String.contains c ':' ->
      (* typed pipeline diagnostics ("phase:code") *)
      Outcome "diagnostic"
    | _ -> Outcome "error")
  | _ -> Outcome "error"

let bump tbl label fallback =
  match List.assoc_opt label tbl with
  | Some c -> M.inc c
  | None -> ( match List.assoc_opt fallback tbl with
    | Some c -> M.inc c
    | None -> ())

let record_response t ~wall_us response =
  let cls = classify response in
  let label = match cls with Outcome l | Op l -> l in
  if enabled t then begin
    M.inc t.requests;
    (match cls with
    | Outcome l -> bump t.outcomes l "error"
    | Op l -> bump t.ops l "other");
    let us = int_of_float wall_us in
    (match cls with
    | Outcome ("hit" | "coalesced") -> M.observe t.dur_hit us
    | Outcome "cold" -> M.observe t.dur_cold us
    | _ -> M.observe t.dur_other us);
    (match cls with
    | Outcome "degraded" ->
      let rung =
        Option.value
          (Option.bind (member "result" response) (str "rung"))
          ~default:"identity"
      in
      bump t.degraded rung "identity"
    | _ -> ());
    let overrun =
      Option.bind (member "serve" response) (fun s ->
          Option.bind (member "overrun_ms" s) Obs.Json.to_float_opt)
    in
    match overrun with
    | Some o when o > 0.0 -> M.inc t.overruns
    | _ -> ()
  end;
  label

let record_solve t ~engine_used ~solve_ms =
  if enabled t then
    let h =
      match List.assoc_opt engine_used t.solve with
      | Some h -> h
      | None -> List.assoc "none" t.solve
    in
    M.observe h (int_of_float (solve_ms *. 1e3))

(* Stage names arrive dynamically from [Linalg.Counters.time]; the
   first observation of a stage registers its histogram (under a
   mutex — registration is rare, observation is not). *)
let observe_stage t ~stage ~seconds =
  if enabled t then begin
    let h =
      Mutex.protect t.stage_m (fun () ->
          match Hashtbl.find_opt t.stages stage with
          | Some h -> h
          | None ->
            let h =
              M.histogram t.reg ~name:"wisefuse_stage_duration_us"
                ~help:
                  "Exclusive pipeline-stage wall time in microseconds \
                   (same accounting as Counters.stage_times)."
                ~labels:[ ("stage", stage) ] ()
            in
            Hashtbl.add t.stages stage h;
            h)
    in
    M.observe h (int_of_float (seconds *. 1e6))
  end

(* --- read-side ----------------------------------------------------------- *)

let exposition t =
  if enabled t then M.exposition t.reg
  else "# wisefuse telemetry disabled\n"

let requests_total t = M.counter_value t.requests
let outcome_total t label =
  match List.assoc_opt label t.outcomes with
  | Some c -> M.counter_value c
  | None -> 0

let op_total t label =
  match List.assoc_opt label t.ops with
  | Some c -> M.counter_value c
  | None -> 0

let outcome_totals t =
  List.map (fun (l, c) -> (l, M.counter_value c)) t.outcomes

let op_totals t = List.map (fun (l, c) -> (l, M.counter_value c)) t.ops

let duration_quantile t cls q =
  let h =
    match cls with
    | `Hit -> t.dur_hit
    | `Cold -> t.dur_cold
    | `Other -> t.dur_other
  in
  M.hist_quantile h q

(* the compact snapshot carried by "health" envelopes *)
let snapshot t =
  let sum l = List.fold_left (fun acc (_, v) -> acc + v) 0 l in
  let oc = outcome_totals t in
  let errors =
    List.filter
      (fun (l, _) ->
        not (List.mem l [ "hit"; "coalesced"; "cold"; "degraded" ]))
      oc
  in
  [ ("requests", requests_total t);
    ("hit", outcome_total t "hit");
    ("coalesced", outcome_total t "coalesced");
    ("cold", outcome_total t "cold");
    ("degraded", outcome_total t "degraded");
    ("errors", sum errors);
    ("ops", sum (op_totals t)) ]
