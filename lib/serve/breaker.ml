(* Per-fingerprint circuit breaker: a TTL'd negative cache over solve
   failures.

   The content-addressed cache remembers *successes*; this module
   remembers *failures*. A request whose solve raises (or fails with a
   typed diagnostic) is deterministic in its content, so retrying the
   same fingerprint is pure waste: after [threshold] consecutive
   failures the breaker opens and further requests for that fingerprint
   are answered with a typed ["breaker"] error — without touching the
   solver lock — until [ttl_s] elapses. After the TTL the breaker goes
   half-open: one probe solve is allowed through, a success closes the
   breaker, another failure re-opens it immediately.

   All state sits under one mutex; operations are O(1) hashtable work,
   off the solver lock's critical path. *)

type entry = {
  mutable failures : int;  (* consecutive failures for this key *)
  mutable opened_at : float option;  (* Clock.now when the breaker opened *)
}

type t = {
  threshold : int;
  ttl_s : float;
  tbl : (string, entry) Hashtbl.t;
  m : Mutex.t;
  mutable trips : int;  (* total times any key's breaker opened *)
  mutable rejects : int;  (* requests turned away while open *)
}

type verdict =
  | Closed
  | Open of float  (* seconds until the half-open probe is allowed *)

let create ~threshold ~ttl_s =
  if threshold < 1 then invalid_arg "Breaker.create: threshold must be >= 1";
  {
    threshold;
    ttl_s;
    tbl = Hashtbl.create 64;
    m = Mutex.create ();
    trips = 0;
    rejects = 0;
  }

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

(* Admission check, called before a cold solve. *)
let check t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | None -> Closed
      | Some e -> (
        match e.opened_at with
        | None -> Closed
        | Some t0 ->
          let elapsed = Linalg.Clock.now () -. t0 in
          if elapsed < t.ttl_s then begin
            t.rejects <- t.rejects + 1;
            Open (t.ttl_s -. elapsed)
          end
          else begin
            (* TTL expired: half-open. Let one probe through, but keep
               the failure run one short of the threshold so a failing
               probe re-opens immediately. *)
            e.opened_at <- None;
            e.failures <- t.threshold - 1;
            Closed
          end))

(* [true] when this failure just opened the breaker. *)
let record_failure t key =
  locked t (fun () ->
      let e =
        match Hashtbl.find_opt t.tbl key with
        | Some e -> e
        | None ->
          let e = { failures = 0; opened_at = None } in
          Hashtbl.add t.tbl key e;
          e
      in
      e.failures <- e.failures + 1;
      if e.failures >= t.threshold && e.opened_at = None then begin
        e.opened_at <- Some (Linalg.Clock.now ());
        t.trips <- t.trips + 1;
        true
      end
      else false)

let record_success t key = locked t (fun () -> Hashtbl.remove t.tbl key)

let open_count t =
  locked t (fun () ->
      let now = Linalg.Clock.now () in
      Hashtbl.fold
        (fun _ e acc ->
          match e.opened_at with
          | Some t0 when now -. t0 < t.ttl_s -> acc + 1
          | _ -> acc)
        t.tbl 0)

let trips t = locked t (fun () -> t.trips)
let rejects t = locked t (fun () -> t.rejects)
