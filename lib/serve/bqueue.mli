(** A minimal blocking multi-producer/multi-consumer queue for the
    daemon's domain pools (line workers, connection workers, the
    access-log writer domain). *)

type 'a t

val create : unit -> 'a t

(** Enqueue and wake one consumer. Silently dropped after {!close}
    (a drain must not accept new work). *)
val push : 'a t -> 'a -> unit

(** Close the queue: consumers drain what is left, then see [None]. *)
val close : 'a t -> unit

(** Block until an element or closure; [None] means closed and
    drained. *)
val pop : 'a t -> 'a option
