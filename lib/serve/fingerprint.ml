(* Content-addressed structural fingerprints for whole scheduling
   requests.

   This generalizes Poly.Polyhedron.structural_key — a canonical
   textual form of one constraint system — to everything a scheduling
   request is a function of: the whole SCoP (domains, accesses,
   expression structure, loop-nest shape, textual positions, parameter
   defaults), the model configuration (which cut strategies, which
   pre-fusion order, Algorithm 2 on/off) and the legality param floor.
   Two requests with equal keys are guaranteed to schedule identically,
   so the serving cache can return the stored response verbatim.

   Canonicalization deliberately mirrors structural_key's philosophy:
   names are {e not} part of the key. Statement names, iterator names,
   parameter names and array names are all replaced by first-occurrence
   indices, so alpha-renamed programs collide — which is exactly what a
   content-addressed cache wants. Loop ids are likewise normalized by
   first occurrence, preserving which statements share which loops
   without keying on the builder's id allocation order.

   The dependence set of a program is a deterministic function of
   (program, param_floor) — the analysis is exact and has no hidden
   state — so the request key does NOT recompute dependences: hashing
   the program content already content-addresses the dependence set,
   and the hit path stays free of B&B emptiness tests (zero LP pivots,
   zero B&B nodes). [deps_key] is still provided so the cold path can
   record the dependence-set fingerprint in the cache entry for audit,
   and so tests can assert the derivation is stable. *)

(* v2: the requested scheduling engine joined the key (an lp-dfp
   schedule may legitimately differ from the ILP one, so the two must
   never share a cache entry).
   v3: the reductions flag joined the key (reduction-aware legality
   relaxes tagged self-dependences, so on/off schedules may differ). *)
let version = "wisefuse-fp-v3"

(* --- canonical writers --------------------------------------------------- *)

let add_int_array buf a =
  Buffer.add_char buf '[';
  Array.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (string_of_int v))
    a;
  Buffer.add_char buf ']'

let add_matrix buf m =
  Buffer.add_char buf '{';
  Array.iter (fun row -> add_int_array buf row) m;
  Buffer.add_char buf '}'

(* arrays are keyed by their declaration index, not their name *)
let add_access buf ~array_index (a : Scop.Access.t) =
  Buffer.add_char buf 'a';
  Buffer.add_string buf (string_of_int (array_index a.Scop.Access.array));
  add_matrix buf a.Scop.Access.idx

let rec add_expr buf ~array_index (e : Scop.Expr.t) =
  match e with
  | Scop.Expr.Const f ->
    (* %h is exact for every float, so structurally equal constants and
       only those collide *)
    Buffer.add_string buf (Printf.sprintf "c%h" f)
  | Scop.Expr.Load a -> add_access buf ~array_index a
  | Scop.Expr.Neg e1 ->
    Buffer.add_string buf "n(";
    add_expr buf ~array_index e1;
    Buffer.add_char buf ')'
  | Scop.Expr.Sqrt e1 ->
    Buffer.add_string buf "q(";
    add_expr buf ~array_index e1;
    Buffer.add_char buf ')'
  | Scop.Expr.Bin (op, l, r) ->
    Buffer.add_char buf
      (match op with
      | Scop.Expr.Add -> '+'
      | Scop.Expr.Sub -> '-'
      | Scop.Expr.Mul -> '*'
      | Scop.Expr.Div -> '/'
      | Scop.Expr.Min -> 'm'
      | Scop.Expr.Max -> 'M');
    Buffer.add_char buf '(';
    add_expr buf ~array_index l;
    Buffer.add_char buf ',';
    add_expr buf ~array_index r;
    Buffer.add_char buf ')'

(* --- the program body ---------------------------------------------------- *)

let program_body (p : Scop.Program.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "P|np=";
  Buffer.add_string buf (string_of_int (Scop.Program.nparams p));
  Buffer.add_string buf "|defaults=";
  add_int_array buf p.Scop.Program.default_params;
  (* arrays by declaration order; names dropped, extents kept *)
  let array_index =
    let tbl = Hashtbl.create 16 in
    List.iteri
      (fun i (d : Scop.Program.array_decl) ->
        if not (Hashtbl.mem tbl d.Scop.Program.array_name) then
          Hashtbl.add tbl d.Scop.Program.array_name i)
      p.Scop.Program.arrays;
    fun name ->
      match Hashtbl.find_opt tbl name with
      | Some i -> i
      | None -> -1 (* malformed program; still deterministic *)
  in
  Buffer.add_string buf "|arrays=";
  List.iter
    (fun (d : Scop.Program.array_decl) ->
      Buffer.add_char buf 'A';
      add_matrix buf d.Scop.Program.extents)
    p.Scop.Program.arrays;
  (* loop ids normalized by first occurrence across program order *)
  let loop_index =
    let tbl = Hashtbl.create 16 in
    let next = ref 0 in
    fun id ->
      match Hashtbl.find_opt tbl id with
      | Some i -> i
      | None ->
        let i = !next in
        incr next;
        Hashtbl.add tbl id i;
        i
  in
  Array.iter
    (fun (s : Scop.Statement.t) ->
      Buffer.add_string buf "|S:d=";
      Buffer.add_string buf (string_of_int (Scop.Statement.depth s));
      Buffer.add_string buf ";beta=";
      add_int_array buf s.Scop.Statement.beta;
      Buffer.add_string buf ";loops=";
      add_int_array buf (Array.map loop_index s.Scop.Statement.loop_ids);
      Buffer.add_string buf ";dom=";
      Buffer.add_string buf (Poly.Polyhedron.structural_key s.Scop.Statement.domain);
      Buffer.add_string buf ";w=";
      add_access buf ~array_index s.Scop.Statement.write;
      Buffer.add_string buf ";r=";
      add_expr buf ~array_index s.Scop.Statement.rhs)
    p.Scop.Program.stmts;
  Buffer.contents buf

(* --- the model body ------------------------------------------------------ *)

let cut_body = function
  | Pluto.Scheduler.Cut_all_sccs -> "all"
  | Pluto.Scheduler.Cut_between_dims -> "dims"
  | Pluto.Scheduler.Cut_minimal -> "min"
  | Pluto.Scheduler.Cut_groups gs ->
    "groups(" ^ String.concat "," (List.map string_of_int gs) ^ ")"

let model_body (m : Fusion.Model.t) =
  match m with
  | Fusion.Model.Icc -> "M|icc"
  | _ ->
    (* the scheduler config's name identifies its pre-fusion ordering
       function (the one field a structural hash cannot inspect); the
       cut strategies and the Algorithm 2 flag are serialized
       structurally *)
    let cfg = Fusion.Model.scheduler_config m in
    Printf.sprintf "M|%s|cfg=%s|init=%s|fb=%s|alg2=%b"
      (Fusion.Model.name m) cfg.Pluto.Scheduler.name
      (match cfg.Pluto.Scheduler.initial_cut with
      | None -> "none"
      | Some c -> cut_body c)
      (cut_body cfg.Pluto.Scheduler.fallback_cut)
      cfg.Pluto.Scheduler.outer_parallel

(* --- dependence sets ----------------------------------------------------- *)

let dep_body (d : Deps.Dep.t) =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "D|%d>%d|%s|%s" d.Deps.Dep.src d.Deps.Dep.dst
       (Deps.Dep.kind_to_string d.Deps.Dep.kind)
       (match d.Deps.Dep.level with
       | Deps.Dep.Carried l -> "c" ^ string_of_int l
       | Deps.Dep.Independent -> "i"));
  Buffer.add_string buf "|sa=";
  add_matrix buf d.Deps.Dep.src_access.Scop.Access.idx;
  Buffer.add_string buf "|da=";
  add_matrix buf d.Deps.Dep.dst_access.Scop.Access.idx;
  Buffer.add_string buf "|p=";
  Buffer.add_string buf (Poly.Polyhedron.structural_key d.Deps.Dep.poly);
  Buffer.contents buf

let deps_body deps =
  (* order-independent: dependence analysis order is an implementation
     detail, the set is not *)
  String.concat "\n" (List.sort String.compare (List.map dep_body deps))

(* --- digests ------------------------------------------------------------- *)

let digest s = Digest.to_hex (Digest.string s)
let program p = digest (program_body p)
let deps_key ds = digest (deps_body ds)

(* The *requested* choice is keyed, not the resolved kind: [Auto] and
   [Fixed] requests stay distinct even when they resolve to the same
   engine for a given program. Conservative (an auto request never
   collides into a fixed entry solved under a different threshold) and
   independent of the program's statement count. *)
let key ?(param_floor = 2) ?(engine = Pluto.Engine.Auto) ?(reductions = false)
    ~model prog =
  digest
    (String.concat "\x00"
       [ version; model_body model;
         "engine=" ^ Pluto.Engine.choice_name engine;
         "reductions=" ^ (if reductions then "on" else "off");
         "floor=" ^ string_of_int param_floor; program_body prog ])
