(** The daemon's instrument bundle over {!Obs.Metrics}: per-outcome
    counters, latency histograms split by cache class, per-engine
    solve and per-stage pipeline latency, and callback-sampled
    cache/breaker/backlog gauges, scraped by the ["metrics"] protocol
    op in Prometheus text format.

    Classification happens in exactly one place — from the response
    envelope the client receives — so scrape totals reconcile with the
    wire by construction:
    [requests_total == sum outcomes + sum ops].

    Unlike [Linalg.Counters] (reset per cold solve, scrubbed by fault
    recovery), these instruments are never reset: totals are monotone
    across recoveries. *)

type t

val outcome_labels : string list
(** ["hit"; "coalesced"; "cold"; "degraded"; "shed"; "oversized";
    "breaker"; "internal"; "draining"; "parse"; "usage"; "diagnostic";
    "error"] — the [outcome] label set of
    [wisefuse_serve_outcomes_total]. *)

val op_labels : string list
(** Protocol ops counted by [wisefuse_serve_ops_total]. *)

(** Callbacks sampling tallies that are authoritative elsewhere (cache
    lock, breaker table, server atomics); invoked at scrape time and
    must be monotone where exposed as counters. *)
type sources = {
  cache_stats : unit -> Cache.stats;
  breaker_open : unit -> int;
  breaker_trips : unit -> int;
  breaker_rejects : unit -> int;
  inflight : unit -> int;
  queued : unit -> int;
  shed_total : unit -> int;
  recovered_total : unit -> int;
  uptime_s : unit -> float;
}

val create : ?enabled:bool -> sources -> t
(** [~enabled:false] mints no-op instruments: the whole record path
    costs one bool load per request. *)

val enabled : t -> bool

(** A response classified as a serve outcome (schedule traffic and
    errors) or a protocol op. *)
type class_ = Outcome of string | Op of string

val classify : Obs.Json.t -> class_
(** Classification from the response envelope alone (status, cache
    verdict, coalesced marker, error code, op marker fields). *)

val record_response : t -> wall_us:float -> Obs.Json.t -> string
(** Count one answered request (requests total, outcome/op, duration
    histogram by cache class, degraded-by-rung, overrun) and return
    the classified label — also used by the access log. *)

val record_solve : t -> engine_used:string -> solve_ms:float -> unit
(** Feed one cold solve into [wisefuse_solve_duration_us{engine=…}]. *)

val observe_stage : t -> stage:string -> seconds:float -> unit
(** Feed one completed pipeline stage (exclusive time) into
    [wisefuse_stage_duration_us{stage=…}]; wired to
    [Linalg.Counters.set_stage_observer]. *)

val exposition : t -> string
(** Prometheus text exposition (a comment line when disabled). *)

val requests_total : t -> int
val outcome_total : t -> string -> int
val op_total : t -> string -> int
val outcome_totals : t -> (string * int) list
val op_totals : t -> (string * int) list

val duration_quantile : t -> [ `Hit | `Cold | `Other ] -> float -> float
(** Quantile estimate (microseconds) from the merged duration
    histogram of a cache class. *)

val snapshot : t -> (string * int) list
(** The compact snapshot carried by ["health"] envelopes: requests,
    hit, coalesced, cold, degraded, errors, ops. *)
