(* Fault injection for the serving layer (tests and the soak harness
   only — production never arms the hook, leaving a single ref read on
   the cold-solve path).

   [solve_fault] is consulted exactly once per cold solve, *under the
   solver lock*, so even when many domains race each planned fault is
   consumed by exactly one solve. Faults model the three ways a request
   can hurt the daemon:

   - [Raise]:   an exception escapes mid-solve after shared state has
                already been mutated — the exception-firewall +
                poisoned-state-recovery path must scrub it;
   - [Exhaust]: the request's budget is starved (the server swaps in a
                one-pivot allowance), so every solver rung trips and
                the ladder degrades to the unbudgeted identity rung —
                the typed-degradation path. Deliberately NOT
                [Ilp.Lp.Chaos.exhaust]: that sabotages the identity
                rung's own legality check too, which is corruption,
                not exhaustion;
   - [Slow ms]: the solve holds the solver lock [ms] longer than it
                should — the head-of-line-blocking / deadline path. *)

type fault =
  | Raise
  | Exhaust
  | Slow of int  (* milliseconds *)

exception Injected of string

let solve_fault : (unit -> fault option) ref = ref (fun () -> None)

(* consumption tallies, for soak-survival accounting *)
let injected_raises = ref 0
let injected_exhausts = ref 0
let injected_slows = ref 0

(* A sentinel poison for the [Raise] fault: bump a solver counter to a
   recognizable value before raising, so a firewall that fails to reset
   the counters is caught by the byte-identity and clean-state tests
   rather than slipping through as "merely" a leaked exception. *)
let poison_marker = 999_983

(* The budget override for [Exhaust]: one pivot total, so every solver
   rung trips almost immediately (the budget is shared across a rung's
   LP solves) while the unbudgeted verification stays sound. *)
let starved_budget () = Linalg.Budget.make ~pivots:1 ()

let apply fault run =
  match fault with
  | Raise ->
    incr injected_raises;
    Linalg.Counters.lp_solves := !Linalg.Counters.lp_solves + poison_marker;
    raise (Injected "injected solver fault")
  | Exhaust ->
    (* the budget swap happened in the server before [run] was built *)
    incr injected_exhausts;
    run ()
  | Slow ms ->
    incr injected_slows;
    Unix.sleepf (float_of_int ms /. 1e3);
    run ()

(* Arm a fixed plan: each queued fault is consumed by exactly one cold
   solve (concurrency-safe), then the hook reverts to no-fault. *)
let arm_queue faults =
  let q = Queue.create () in
  List.iter (fun f -> Queue.push f q) faults;
  let m = Mutex.create () in
  solve_fault :=
    fun () ->
      Mutex.lock m;
      let f = Queue.take_opt q in
      Mutex.unlock m;
      f

let reset () =
  solve_fault := (fun () -> None);
  injected_raises := 0;
  injected_exhausts := 0;
  injected_slows := 0
