(* Deterministic large-SCoP generator: programs of hundreds of
   statements in three dependence shapes, shared by the fuzz harness
   and the bench scale sweep. Every statement writes its own array and
   reads its predecessor's, so the dependence count stays linear in the
   statement count — the regime of unrolled / aggressively inlined
   bodies that motivates the lp-dfp engine. (Recycling arrays from a
   small pool instead makes the dependence count quadratic, and the
   dependence processing shared by every engine drowns out the
   per-level solver being measured.) *)

type shape = Chain | Stencil | Blocked

let all_shapes = [ Chain; Stencil; Blocked ]

let shape_name = function
  | Chain -> "chain"
  | Stencil -> "stencil"
  | Blocked -> "blocked"

let shape_of_string = function
  | "chain" -> Some Chain
  | "stencil" -> Some Stencil
  | "blocked" -> Some Blocked
  | _ -> None

let block = 5 (* statements per nest in the blocked shape *)

let generate ?(n = 16) shape ~stmts =
  if stmts < 1 then invalid_arg "Scopgen.generate: stmts < 1";
  let open Scop.Build in
  let ctx =
    create
      ~name:(Printf.sprintf "%s%d" (shape_name shape) stmts)
      ~params:[ ("N", n) ]
  in
  let np = param ctx "N" in
  let lb = ci 1 and ub = np -~ ci 2 in
  let arr1 a = array ctx (Printf.sprintf "A%d" a) [ np ] in
  let arr2 a = array ctx (Printf.sprintf "A%d" a) [ np; np ] in
  (match shape with
  | Chain ->
    let arrs = Array.init (stmts + 1) arr1 in
    for k = 0 to stmts - 1 do
      let src = arrs.(k) and dst = arrs.(k + 1) in
      loop ctx "i" ~lb ~ub (fun i ->
          assign ctx (Printf.sprintf "S%d" k) dst [ i ] (src.%([ i ]) +: f 1.0))
    done
  | Stencil ->
    let arrs = Array.init (stmts + 1) arr1 in
    for k = 0 to stmts - 1 do
      let src = arrs.(k) and dst = arrs.(k + 1) in
      loop ctx "i" ~lb ~ub (fun i ->
          assign ctx (Printf.sprintf "S%d" k) dst [ i ]
            (src.%([ i -~ ci 1 ]) +: src.%([ i ]) +: src.%([ i +~ ci 1 ])))
    done
  | Blocked ->
    let arrs = Array.init (stmts + 1) arr2 in
    let k = ref 0 in
    while !k < stmts do
      let base = !k in
      let cnt = min block (stmts - base) in
      loop ctx "i" ~lb ~ub (fun i ->
          loop ctx "j" ~lb ~ub (fun j ->
              for t = 0 to cnt - 1 do
                let kk = base + t in
                let src = arrs.(kk) and dst = arrs.(kk + 1) in
                assign ctx (Printf.sprintf "S%d" kk) dst [ i; j ]
                  (src.%([ i; j ]) +: f 1.0)
              done));
      k := base + cnt
    done);
  finish ctx
