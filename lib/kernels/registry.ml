type entry = {
  name : string;
  suite : string;
  category : string;
  paper_size : string;
  model_size : int;
  large : bool;
  program : ?n:int -> unit -> Scop.Program.t;
}

let all =
  [
    {
      name = "gemsfdtd";
      suite = "SPEC 2006";
      category = "Computational Electromagnetics";
      paper_size = "Reference Input";
      model_size = 12;
      large = true;
      program = Gemsfdtd.program;
    };
    {
      name = "swim";
      suite = "SPEC OMP";
      category = "Shallow Water Modeling";
      paper_size = "Reference Input";
      model_size = 16;
      large = true;
      program = Swim.program;
    };
    {
      name = "applu";
      suite = "SPEC OMP";
      category = "Computational Fluid Dynamics";
      paper_size = "Reference Input";
      model_size = 12;
      large = true;
      program = Applu.program;
    };
    {
      name = "bt";
      suite = "NPB";
      category = "Block Tri-diagonal solver";
      paper_size = "CLASS C; (162)^3, dt = 0.0001";
      model_size = 12;
      large = true;
      program = Bt.program;
    };
    {
      name = "sp";
      suite = "NPB";
      category = "Scalar Penta-diagonal solver";
      paper_size = "CLASS C; (162)^3, dt = 0.00067";
      model_size = 12;
      large = true;
      program = Sp.program;
    };
    {
      name = "advect";
      suite = "PLuTo";
      category = "Weather modeling";
      paper_size = "nx=ny=nz=300";
      model_size = 40;
      large = false;
      program = Advect.program;
    };
    {
      name = "lu";
      suite = "Polybench";
      category = "Linear Algebra";
      paper_size = "N=1500";
      model_size = 28;
      large = false;
      program = Lu.program;
    };
    {
      name = "tce";
      suite = "Polybench";
      category = "Computational Chemistry";
      paper_size = "Standard; (55)^3";
      model_size = 14;
      large = false;
      program = Tce.program;
    };
    {
      name = "gemver";
      suite = "Polybench";
      category = "Linear Algebra";
      paper_size = "N=1500";
      model_size = 48;
      large = false;
      program = Gemver.program;
    };
    {
      name = "wupwise";
      suite = "SPEC OMP";
      category = "Quantum Chromodynamics";
      paper_size = "Reference Input";
      model_size = 22;
      large = false;
      program = Wupwise.program;
    };
    (* reduction kernels (not from the paper's Table 1): exercise the
       wisereduce detection pass and reduction-aware legality *)
    {
      name = "dot";
      suite = "BLAS";
      category = "Linear Algebra (level 1)";
      paper_size = "N=10^6";
      model_size = 64;
      large = false;
      program = Dot.program;
    };
    {
      name = "gemmacc";
      suite = "BLAS";
      category = "Linear Algebra (level 3)";
      paper_size = "N=1024";
      model_size = 14;
      large = false;
      program = Gemmacc.program;
    };
    {
      name = "histogram";
      suite = "UTDSP";
      category = "Image Processing";
      paper_size = "512x512";
      model_size = 32;
      large = false;
      program = Histogram.program;
    };
    {
      name = "covariance";
      suite = "Polybench";
      category = "Data Mining";
      paper_size = "N=1400";
      model_size = 12;
      large = false;
      program = Covariance.program;
    };
  ]

let find name = List.find (fun e -> e.name = name) all

let build e = e.program ~n:e.model_size ()
