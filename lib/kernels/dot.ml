(* dot (BLAS level 1): inner product plus the norm of the left vector —
   two scalar accumulation loops over the same data.

     for i: S1: dot[0] += a[i] * b[i]
     for i: S2: nrm[0] += a[i] * a[i]

   Both statements are +-reductions into a scalar cell; their
   self-dependences are carried by the only loop, so without
   reduction-aware legality neither loop can be parallel. With it, the
   fused loop is a parallel reduction (privatize both accumulators,
   combine after the barrier). *)

open Scop.Build

let program ?(n = 64) () =
  let ctx = create ~name:"dot" ~params:[ ("N", n) ] in
  let n = param ctx "N" in
  let a = array ctx "a" [ n ] and b = array ctx "b" [ n ] in
  let dot = array ctx "dot" [ ci 1 ] in
  let nrm = array ctx "nrm" [ ci 1 ] in
  let lb = ci 0 and ub = n -~ ci 1 in
  loop ctx "i" ~lb ~ub (fun i ->
      assign ctx "S1" dot [ ci 0 ]
        (dot.%([ ci 0 ]) +: (a.%([ i ]) *: b.%([ i ]))));
  loop ctx "i" ~lb ~ub (fun i ->
      assign ctx "S2" nrm [ ci 0 ]
        (nrm.%([ ci 0 ]) +: (a.%([ i ]) *: a.%([ i ]))));
  finish ctx
