(* covariance (Polybench, data mining): column means, centering, then
   the covariance contraction — a three-statement pipeline whose first
   and last statements are +-reductions.

     for j for i:       S1: mean[j] += data[i][j]
     for i for j:       S2: cdata[i][j] = data[i][j] - mean[j] * (1/N)
     for i for j for k: S3: cov[i][j]  += cdata[k][i] * cdata[k][j]

   S2 is a plain (non-reduction) statement between the two chains: it
   subtracts, and it writes a different array than it reads, so the
   detector must leave it alone while proving S1 and S3. The S3
   contraction over k is the expensive reduction loop. *)

open Scop.Build

let program ?(n = 12) () =
  let invn = 1.0 /. float_of_int n in
  let ctx = create ~name:"covariance" ~params:[ ("N", n) ] in
  let n = param ctx "N" in
  let data = array ctx "data" [ n; n ] in
  let cdata = array ctx "cdata" [ n; n ] in
  let mean = array ctx "mean" [ n ] in
  let cov = array ctx "cov" [ n; n ] in
  let lb = ci 0 and ub = n -~ ci 1 in
  loop ctx "j" ~lb ~ub (fun j ->
      loop ctx "i" ~lb ~ub (fun i ->
          assign ctx "S1" mean [ j ] (mean.%([ j ]) +: data.%([ i; j ]))));
  loop ctx "i" ~lb ~ub (fun i ->
      loop ctx "j" ~lb ~ub (fun j ->
          assign ctx "S2" cdata [ i; j ]
            (data.%([ i; j ]) -: (mean.%([ j ]) *: f invn))));
  loop ctx "i" ~lb ~ub (fun i ->
      loop ctx "j" ~lb ~ub (fun j ->
          loop ctx "k" ~lb ~ub (fun k ->
              assign ctx "S3" cov [ i; j ]
                (cov.%([ i; j ]) +: (cdata.%([ k; i ]) *: cdata.%([ k; j ]))))));
  finish ctx
