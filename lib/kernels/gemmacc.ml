(* gemmacc (BLAS level 3): accumulating matrix multiply,
   C += A * B — the canonical carried reduction over the contraction
   dimension.

     for i for j for k: S1: C[i][j] += A[i][k] * B[k][j]

   The self-dependence on C[i][j] is carried by the k loop only; i and
   j are parallel outright. Reduction-aware legality additionally
   licenses k as a parallel reduction (privatize C[i][j] per thread,
   combine after the barrier). *)

open Scop.Build

let program ?(n = 14) () =
  let ctx = create ~name:"gemmacc" ~params:[ ("N", n) ] in
  let n = param ctx "N" in
  let c = array ctx "C" [ n; n ] in
  let a = array ctx "A" [ n; n ] and b = array ctx "B" [ n; n ] in
  let lb = ci 0 and ub = n -~ ci 1 in
  loop ctx "i" ~lb ~ub (fun i ->
      loop ctx "j" ~lb ~ub (fun j ->
          loop ctx "k" ~lb ~ub (fun k ->
              assign ctx "S1" c [ i; j ]
                (c.%([ i; j ]) +: (a.%([ i; k ]) *: b.%([ k; j ]))))));
  finish ctx
