(** Deterministic large-SCoP generator for scale testing.

    The registry kernels top out around 20 statements; the scheduling
    engines diverge far beyond that. This generator builds programs of
    hundreds of statements in three dependence shapes, the same
    programs for the fuzz harness ([FUZZ_STMTS]) and the
    [bench -- scale] size sweep:

    - {e chain}: one depth-1 nest per statement, statement [k]
      consuming what [k-1] produced — a single long producer-consumer
      chain (one dependence cluster spanning the whole program);
    - {e stencil}: like chain, but each statement is a 3-point stencil
      sweep, so every dependence also carries the ±1 shifts that force
      non-trivial hyperplanes;
    - {e blocked}: depth-2 nests of several statements each, dense
      producer-consumer dependences inside a nest and sparse ones
      across — many small clusters instead of one big one.

    Generation is deterministic: same shape, [stmts] and [n] — same
    program, byte for byte. *)

type shape = Chain | Stencil | Blocked

(** In presentation order: chain, stencil, blocked. *)
val all_shapes : shape list

(** ["chain"], ["stencil"], ["blocked"]. *)
val shape_name : shape -> string

(** Inverse of {!shape_name}; [None] on unknown names. *)
val shape_of_string : string -> shape option

(** [generate ?n shape ~stmts] builds a program of exactly [stmts]
    statements over size-[n] arrays (default 16; loops run over
    [1, n-2]).
    @raise Invalid_argument if [stmts < 1]. *)
val generate : ?n:int -> shape -> stmts:int -> Scop.Program.t
