(* histogram (image processing): per-column sum and per-column peak of
   an image — affine histogramming (the bin index is an iterator, not a
   data-dependent subscript, so it stays inside the polyhedral model).

     for i for j: S1: hist[j] += img[i][j]
     for i for j: S2: peak[j] = max(peak[j], img[i][j])

   Both self-dependences are carried by the i loop (same column j,
   successive rows i): without reduction-aware legality only j is
   parallel; with it, i becomes a parallel reduction for both the +
   and the max operator. *)

open Scop.Build

let program ?(n = 32) () =
  let ctx = create ~name:"histogram" ~params:[ ("N", n) ] in
  let n = param ctx "N" in
  let img = array ctx "img" [ n; n ] in
  let hist = array ctx "hist" [ n ] in
  let peak = array ctx "peak" [ n ] in
  let lb = ci 0 and ub = n -~ ci 1 in
  loop ctx "i" ~lb ~ub (fun i ->
      loop ctx "j" ~lb ~ub (fun j ->
          assign ctx "S1" hist [ j ] (hist.%([ j ]) +: img.%([ i; j ]))));
  loop ctx "i" ~lb ~ub (fun i ->
      loop ctx "j" ~lb ~ub (fun j ->
          assign ctx "S2" peak [ j ] (max_ (peak.%([ j ])) (img.%([ i; j ])))));
  finish ctx
